#include "obs/export.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/fingerprint.hpp"
#include "obs/threads.hpp"

namespace pdt::obs {

// ---------------------------------------------------------------- JSON --

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

void JsonWriter::escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!first_.empty());
  first_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!first_.empty());
  first_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  escaped(k);
  os_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  separate();
  os_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  separate();
  os_ << u;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

// ------------------------------------------------------------ Perfetto --

void write_perfetto_trace(std::ostream& os, const PhaseProfiler& profiler,
                          const std::vector<mpsim::TraceEvent>& collectives) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("generator", "pdtree obs");
  w.kv("clock", "virtual microseconds (mpsim)");
  w.kv("truncated", profiler.truncated());
  w.end_object();
  w.key("traceEvents").begin_array();

  // Track metadata: one process, one named thread per rank.
  w.begin_object();
  w.kv("ph", "M").kv("pid", 0).kv("tid", 0).kv("name", "process_name");
  w.key("args").begin_object().kv("name", "mpsim machine").end_object();
  w.end_object();
  for (int r = 0; r < profiler.num_ranks(); ++r) {
    w.begin_object();
    w.kv("ph", "M").kv("pid", 0).kv("tid", r).kv("name", "thread_name");
    w.key("args")
        .begin_object()
        .kv("name", "rank " + std::to_string(r))
        .end_object();
    w.end_object();
  }

  // Phase slices: complete duration events on the rank's track. "ts" is
  // already in microseconds — the virtual clock's unit.
  for (const Slice& s : profiler.slices()) {
    w.begin_object();
    w.kv("ph", "X").kv("pid", 0).kv("tid", s.rank);
    w.kv("ts", s.start).kv("dur", s.dur);
    w.kv("name", std::string(profiler.phase_name(s.phase)) + "/" +
                     mpsim::to_string(s.kind));
    w.kv("cat", mpsim::to_string(s.kind));
    w.key("args").begin_object();
    w.kv("level", s.level);
    w.kv("phase", profiler.phase_name(s.phase));
    w.end_object();
    w.end_object();
  }

  // Collectives as flow arrows from the group's first to its last rank at
  // the completion time (a point-tied visual cue of who synchronized).
  std::uint64_t flow_id = 1;
  for (const mpsim::TraceEvent& ev : collectives) {
    if (ev.group_size <= 1) continue;
    const int first = ev.group_base;
    const int last = ev.group_base + ev.group_size - 1;
    w.begin_object();
    w.kv("ph", "s").kv("id", flow_id).kv("pid", 0).kv("tid", first);
    w.kv("ts", ev.time).kv("name", mpsim::to_string(ev.kind));
    w.kv("cat", "collective");
    w.key("args").begin_object();
    w.kv("words", ev.words).kv("detail", ev.detail);
    w.end_object();
    w.end_object();
    w.begin_object();
    w.kv("ph", "f").kv("bp", "e").kv("id", flow_id).kv("pid", 0);
    w.kv("tid", last).kv("ts", ev.time);
    w.kv("name", mpsim::to_string(ev.kind)).kv("cat", "collective");
    w.end_object();
    ++flow_id;
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

// ------------------------------------------------------------- metrics --

namespace {

void write_totals_fields(JsonWriter& w, const PhaseTotals& t) {
  w.kv("compute_us", t.compute);
  w.kv("comm_us", t.comm);
  w.kv("io_us", t.io);
  w.kv("idle_us", t.idle);
  w.kv("words_sent", t.words_sent);
  w.kv("words_received", t.words_received);
  w.kv("charges", t.charges);
}

}  // namespace

void write_metrics(JsonWriter& w, const Observability& o) {
  const PhaseProfiler& prof = o.profiler();
  w.begin_object();
  w.kv("schema", "pdt-metrics-v1");
  w.kv("num_ranks", prof.num_ranks());
  w.kv("max_level", prof.max_level());

  // Per-(phase, level, rank) breakdown — the full attribution table.
  w.key("phases").begin_array();
  {
    const auto rows = prof.rows();
    // Group rows by (phase, level); rows() is sorted that way already.
    std::size_t i = 0;
    while (i < rows.size()) {
      const PhaseId phase = rows[i].phase;
      const int level = rows[i].level;
      w.begin_object();
      w.kv("phase", prof.phase_name(phase));
      w.kv("level", level);
      PhaseTotals sum;
      w.key("per_rank").begin_array();
      for (; i < rows.size() && rows[i].phase == phase &&
             rows[i].level == level;
           ++i) {
        sum += rows[i].totals;
        w.begin_object();
        w.kv("rank", rows[i].rank);
        write_totals_fields(w, rows[i].totals);
        w.end_object();
      }
      w.end_array();
      write_totals_fields(w, sum);
      w.end_object();
    }
  }
  w.end_array();

  // Per-level rollup across phases: the Section-5 "where did the time go
  // at this depth" view, with the derived balance factors.
  w.key("levels").begin_array();
  for (int level = -1; level <= prof.max_level(); ++level) {
    const std::vector<PhaseTotals> per_rank = prof.level_rank_totals(level);
    PhaseTotals sum;
    for (const PhaseTotals& t : per_rank) sum += t;
    if (sum.charges == 0) continue;
    w.begin_object();
    w.kv("level", level);
    write_totals_fields(w, sum);
    w.kv("load_imbalance", prof.load_imbalance(level));
    w.kv("comm_to_compute",
         sum.compute > 0.0 ? sum.comm / sum.compute : 0.0);
    w.end_object();
  }
  w.end_array();

  const MetricsRegistry& reg = o.metrics();
  w.key("counters").begin_object();
  for (const auto& [name, c] : reg.counters()) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : reg.gauges()) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : reg.histograms()) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    // Sparse buckets: [upper_bound, count] pairs, zero buckets omitted.
    w.key("buckets").begin_array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h.buckets()[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      w.begin_array().value(Histogram::bucket_bound(b)).value(n).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
}

void write_metrics_report(std::ostream& os, const Observability& o) {
  JsonWriter w(os);
  write_metrics(w, o);
  os << '\n';
}

// ---------------------------------------------------------------- comm --

namespace {

void write_ledger_totals_fields(JsonWriter& w,
                                const mpsim::CommLedger::Totals& t) {
  w.kv("calls", t.calls);
  w.kv("words", t.words);
  w.kv("predicted_us", t.predicted_us);
  w.kv("measured_us", t.measured_us);
  w.kv("delta_us", t.delta_us());
  w.kv("io_us", t.io_us);
  w.kv("messages", t.messages);
  // Transient-retry waste attributed to this slice; omitted when zero so
  // fault-free artifacts keep their pre-retry byte layout.
  if (t.retries > 0) {
    w.kv("retry_us", t.retry_us);
    w.kv("retries", t.retries);
  }
}

std::string comm_phase_name(const PhaseProfiler* profiler, PhaseId phase) {
  if (profiler != nullptr &&
      static_cast<std::size_t>(phase) < profiler->phase_names().size()) {
    return std::string(profiler->phase_name(phase));
  }
  return "phase" + std::to_string(phase);
}

}  // namespace

void write_comm(JsonWriter& w, const mpsim::CommLedger& ledger,
                const CriticalPathTracer* critical,
                const PhaseProfiler* profiler, int top_k) {
  w.begin_object();
  w.kv("schema", "pdt-comm-v1");
  w.kv("num_ranks", ledger.num_ranks());
  w.kv("num_collective_calls",
       static_cast<std::uint64_t>(ledger.entries().size()));

  // Aggregates per collective kind; kinds never called are omitted.
  w.key("collectives").begin_array();
  for (int k = 0; k < mpsim::kNumCollectiveKinds; ++k) {
    const auto kind = static_cast<mpsim::CollectiveKind>(k);
    const mpsim::CommLedger::Totals t = ledger.kind_totals(kind);
    if (t.calls == 0) continue;
    w.begin_object();
    w.kv("kind", mpsim::to_string(kind));
    write_ledger_totals_fields(w, t);
    w.end_object();
  }
  w.end_array();

  // Aggregates per tree level (-1 = outside any level scope).
  w.key("levels").begin_array();
  for (int level = -1; level <= ledger.max_level(); ++level) {
    const mpsim::CommLedger::Totals t = ledger.level_totals(level);
    if (t.calls == 0) continue;
    w.begin_object();
    w.kv("level", level);
    write_ledger_totals_fields(w, t);
    w.end_object();
  }
  w.end_array();

  // Rank x rank traffic (row = sender). Words are 4-byte wire words, so
  // bytes = 4 * words.
  const int n = ledger.num_ranks();
  w.key("matrix").begin_object();
  w.key("bytes").begin_array();
  for (int f = 0; f < n; ++f) {
    w.begin_array();
    for (int t = 0; t < n; ++t) w.value(4.0 * ledger.words(f, t));
    w.end_array();
  }
  w.end_array();
  w.key("messages").begin_array();
  for (int f = 0; f < n; ++f) {
    w.begin_array();
    for (int t = 0; t < n; ++t) w.value(ledger.messages(f, t));
    w.end_array();
  }
  w.end_array();
  w.end_object();

  if (critical != nullptr) {
    const CriticalPathTracer::Path path = critical->path();
    w.key("critical_path").begin_object();
    w.kv("max_clock_us", path.max_clock_us);
    w.kv("end_rank", path.end_rank);
    w.kv("handoffs", path.handoffs);
    w.kv("barriers", critical->barriers());
    w.kv("num_segments", static_cast<std::uint64_t>(path.segments.size()));

    // Time along the path by charge kind, and by phase.
    mpsim::Time by_kind[4] = {0.0, 0.0, 0.0, 0.0};
    std::vector<mpsim::Time> by_phase;
    for (const PathSegment& s : path.segments) {
      by_kind[static_cast<int>(s.kind)] += s.dur_us();
      if (static_cast<std::size_t>(s.phase) >= by_phase.size()) {
        by_phase.resize(static_cast<std::size_t>(s.phase) + 1, 0.0);
      }
      by_phase[static_cast<std::size_t>(s.phase)] += s.dur_us();
    }
    w.key("by_kind").begin_object();
    w.kv("compute_us", by_kind[static_cast<int>(mpsim::ChargeKind::Compute)]);
    w.kv("comm_us", by_kind[static_cast<int>(mpsim::ChargeKind::Comm)]);
    w.kv("io_us", by_kind[static_cast<int>(mpsim::ChargeKind::Io)]);
    w.kv("idle_us", by_kind[static_cast<int>(mpsim::ChargeKind::Idle)]);
    w.end_object();
    w.key("by_phase").begin_array();
    for (std::size_t p = 0; p < by_phase.size(); ++p) {
      if (by_phase[p] == 0.0) continue;
      w.begin_object();
      w.kv("phase", comm_phase_name(profiler, static_cast<PhaseId>(p)));
      w.kv("us", by_phase[p]);
      w.kv("blame_pct", path.max_clock_us > 0.0
                            ? 100.0 * by_phase[p] / path.max_clock_us
                            : 0.0);
      w.end_object();
    }
    w.end_array();

    // Top-k segments by duration (ties broken by start time, so the
    // ordering — and the exported report — is deterministic).
    std::vector<const PathSegment*> by_dur;
    by_dur.reserve(path.segments.size());
    for (const PathSegment& s : path.segments) by_dur.push_back(&s);
    std::sort(by_dur.begin(), by_dur.end(),
              [](const PathSegment* a, const PathSegment* b) {
                if (a->dur_us() != b->dur_us()) return a->dur_us() > b->dur_us();
                return a->start_us < b->start_us;
              });
    if (top_k >= 0 && static_cast<std::size_t>(top_k) < by_dur.size()) {
      by_dur.resize(static_cast<std::size_t>(top_k));
    }
    w.key("top_segments").begin_array();
    for (const PathSegment* s : by_dur) {
      w.begin_object();
      w.kv("rank", s->rank);
      w.kv("phase", comm_phase_name(profiler, s->phase));
      w.kv("level", s->level);
      w.kv("kind", mpsim::to_string(s->kind));
      w.kv("start_us", s->start_us);
      w.kv("dur_us", s->dur_us());
      w.kv("blame_pct", path.max_clock_us > 0.0
                            ? 100.0 * s->dur_us() / path.max_clock_us
                            : 0.0);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.end_object();
}

// -------------------------------------------------------------- events --

namespace {

/// Compact per-event tag arrays keep million-event logs tractable. Tags:
///   ["cp", rank, dt, phase, level]                     compute charge
///   ["io", rank, dt, phase, level]                     io charge
///   ["cm", rank, dt, lat, ws, wr, msgs, phase, level]  comm charge
///   ["b",  what, [members]]                            barrier
///   ["to", dead, [survivors]]                          timeout
///   ["w",  rank, until]                                wait (absolute)
///   ["wf", rank, src]                                  wait-for (causal)
///   ["g",  kind, words, dim, [members]]                collective
///   ["rt", faulty, mult, [members]]                    transient retry
void write_event(JsonWriter& w, const mpsim::ExecEvent& e) {
  using Type = mpsim::ExecEvent::Type;
  w.begin_array();
  switch (e.type) {
    case Type::Charge:
      if (e.kind == mpsim::ChargeKind::Comm) {
        w.value("cm").value(e.rank).value(e.dt_us).value(e.latency_us);
        w.value(e.words_sent).value(e.words_received).value(e.messages);
        w.value(e.phase).value(e.level);
      } else {
        w.value(e.kind == mpsim::ChargeKind::Io ? "io" : "cp");
        w.value(e.rank).value(e.dt_us).value(e.phase).value(e.level);
      }
      break;
    case Type::Barrier:
      w.value("b").value(e.what);
      w.begin_array();
      for (const mpsim::Rank r : e.members) w.value(r);
      w.end_array();
      break;
    case Type::Timeout:
      w.value("to").value(e.rank);
      w.begin_array();
      for (const mpsim::Rank r : e.members) w.value(r);
      w.end_array();
      break;
    case Type::Wait:
      w.value("w").value(e.rank).value(e.until_us);
      break;
    case Type::WaitFor:
      w.value("wf").value(e.rank).value(e.peer);
      break;
    case Type::Collective:
      w.value("g").value(e.what).value(e.words).value(e.dim);
      w.begin_array();
      for (const mpsim::Rank r : e.members) w.value(r);
      w.end_array();
      break;
    case Type::Retry:
      w.value("rt").value(e.rank).value(e.mult);
      w.begin_array();
      for (const mpsim::Rank r : e.members) w.value(r);
      w.end_array();
      break;
  }
  w.end_array();
}

}  // namespace

namespace {

/// The compact host overlay shared by the events log and any envelope
/// that wants a one-object wall-clock summary: totals, counters, and a
/// per-phase host-vs-virtual rollup.
void write_host_overlay(JsonWriter& w, const HostProfiler& host) {
  w.begin_object();
  w.kv("clock", host.clock_name());
  w.kv("total_ns", host.total_ns());
  w.kv("samples", host.samples());
  const HostCounters hc = host.counters();
  w.key("counters").begin_object();
  w.kv("requested", host.counters_requested());
  w.kv("enabled", hc.enabled);
  if (hc.enabled) {
    w.kv("cycles", hc.cycles);
    w.kv("instructions", hc.instructions);
  }
  w.end_object();

  const PhaseProfiler* prof = host.stamps();
  w.key("by_phase").begin_array();
  // Phase ids are dense; iterate ids seen by either side.
  std::size_t num_phases = 0;
  for (const HostProfiler::Row& r : host.rows()) {
    num_phases = std::max(num_phases, static_cast<std::size_t>(r.phase) + 1);
  }
  for (std::size_t p = 0; p < num_phases; ++p) {
    const HostTotals h =
        host.phase_totals(static_cast<PhaseId>(p), 0, /*any_level=*/true);
    if (h.samples == 0) continue;
    w.begin_object();
    w.kv("phase", comm_phase_name(prof, static_cast<PhaseId>(p)));
    w.kv("host_ns", h.total_ns());
    if (prof != nullptr) {
      const PhaseTotals v =
          prof->phase_totals(static_cast<PhaseId>(p), 0, /*any_level=*/true);
      w.kv("virtual_us", v.compute + v.comm + v.io + v.idle);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_events(JsonWriter& w, const mpsim::EventRecorder& rec,
                  const EventLogMeta& meta, const HostProfiler* host) {
  w.begin_object();
  w.kv("schema", "pdt-events-v1");
  w.kv("nprocs", rec.nprocs());

  const mpsim::CostModel& cm = rec.cost();
  w.key("cost_model").begin_object();
  w.kv("t_s", cm.t_s);
  w.kv("t_w", cm.t_w);
  w.kv("t_c", cm.t_c);
  w.kv("t_io", cm.t_io);
  w.kv("t_timeout", cm.t_timeout);
  w.end_object();

  w.key("meta").begin_object();
  w.kv("formulation", meta.formulation);
  w.kv("workload", meta.workload);
  w.kv("n", meta.n);
  w.kv("procs", meta.procs != 0 ? meta.procs : rec.nprocs());
  w.kv("iso_c", meta.iso_c);
  if (meta.fingerprint != nullptr) {
    w.key("fingerprint");
    write_fingerprint(w, *meta.fingerprint);
  }
  w.end_object();

  w.key("phases").begin_array();
  for (const std::string& name : rec.phase_names()) w.value(name);
  w.end_array();

  w.key("events").begin_array();
  for (const mpsim::ExecEvent& e : rec.events()) write_event(w, e);
  w.end_array();

  // The recorded ground truth the replay identity gate checks against:
  // shadow clocks equal the machine's clocks bit-exactly (%.17g survives
  // the JSON round trip losslessly).
  w.key("final").begin_object();
  w.kv("max_clock_us", rec.max_clock());
  w.key("clocks").begin_array();
  for (const mpsim::Time c : rec.clocks()) w.value(c);
  w.end_array();
  w.end_object();

  // Measured wall-clock overlay (absent when no host profiler ran, so
  // pre-host logs stay byte-identical). pdt-replay uses this to chart
  // predicted (virtual, re-priced) against measured (host) scaling.
  if (host != nullptr) {
    w.key("host");
    write_host_overlay(w, *host);
  }

  w.end_object();
}

void write_events_report(std::ostream& os, const mpsim::EventRecorder& rec,
                         const EventLogMeta& meta, const HostProfiler* host) {
  JsonWriter w(os);
  write_events(w, rec, meta, host);
  os << '\n';
}

// ---------------------------------------------------------------- host --

void write_host(JsonWriter& w, const HostProfiler& host) {
  const PhaseProfiler* prof = host.stamps();
  w.begin_object();
  w.kv("schema", "pdt-host-v1");
  w.kv("clock", host.clock_name());
  w.kv("num_ranks", host.num_ranks());
  w.kv("max_level", host.max_level());
  w.kv("total_ns", host.total_ns());
  w.kv("samples", host.samples());
  // Backwards clock steps are clamped to zero-length intervals; surface
  // the count when it happened (absent otherwise, so clean runs keep
  // their pre-counter bytes).
  if (host.clamped() > 0) w.kv("clamped", host.clamped());

  const HostCounters hc = host.counters();
  w.key("counters").begin_object();
  w.kv("requested", host.counters_requested());
  w.kv("enabled", hc.enabled);
  if (hc.enabled) {
    w.kv("cycles", hc.cycles);
    w.kv("instructions", hc.instructions);
    w.kv("ipc", hc.cycles > 0 ? static_cast<double>(hc.instructions) /
                                    static_cast<double>(hc.cycles)
                              : 0.0);
  }
  w.end_object();

  // Virtual grand total paired against total_ns (for the report's
  // headline "1 virtual us cost X host ns on this machine" ratio).
  double virtual_total_us = 0.0;

  // Per-(phase, level) groups with per-rank cells, each cell paired with
  // the virtual microseconds the same (phase, level, rank) key holds.
  w.key("phases").begin_array();
  {
    const auto rows = host.rows();
    std::size_t i = 0;
    while (i < rows.size()) {
      const PhaseId phase = rows[i].phase;
      const int level = rows[i].level;
      w.begin_object();
      w.kv("phase", comm_phase_name(prof, phase));
      w.kv("level", level);
      HostTotals sum;
      double virtual_us = 0.0;
      w.key("per_rank").begin_array();
      for (; i < rows.size() && rows[i].phase == phase &&
             rows[i].level == level;
           ++i) {
        sum += rows[i].totals;
        const HostTotals& t = rows[i].totals;
        w.begin_object();
        w.kv("rank", rows[i].rank);
        w.kv("compute_ns", t.compute_ns);
        w.kv("comm_ns", t.comm_ns);
        w.kv("io_ns", t.io_ns);
        w.kv("idle_ns", t.idle_ns);
        w.kv("total_ns", t.total_ns());
        w.kv("samples", t.samples);
        w.end_object();
      }
      w.end_array();
      w.kv("compute_ns", sum.compute_ns);
      w.kv("comm_ns", sum.comm_ns);
      w.kv("io_ns", sum.io_ns);
      w.kv("idle_ns", sum.idle_ns);
      w.kv("total_ns", sum.total_ns());
      w.kv("samples", sum.samples);
      if (prof != nullptr) {
        const PhaseTotals v = prof->phase_totals(phase, level);
        const double vus = v.compute + v.comm + v.io + v.idle;
        virtual_us += vus;
        w.kv("virtual_us", vus);
      }
      virtual_total_us += virtual_us;
      w.end_object();
    }
  }
  w.end_array();
  w.kv("virtual_total_us", virtual_total_us);

  // Per-phase rollup: host share vs. virtual share of their respective
  // grand totals, and the signed divergence in percentage points — the
  // ranking pdt-report uses to surface where the cost model and the host
  // disagree most.
  w.key("by_phase").begin_array();
  {
    std::size_t num_phases = 0;
    for (const HostProfiler::Row& r : host.rows()) {
      num_phases = std::max(num_phases, static_cast<std::size_t>(r.phase) + 1);
    }
    const std::int64_t host_total = host.total_ns();
    for (std::size_t p = 0; p < num_phases; ++p) {
      const HostTotals h =
          host.phase_totals(static_cast<PhaseId>(p), 0, /*any_level=*/true);
      if (h.samples == 0) continue;
      w.begin_object();
      w.kv("phase", comm_phase_name(prof, static_cast<PhaseId>(p)));
      w.kv("host_ns", h.total_ns());
      const double host_share =
          host_total > 0
              ? 100.0 * static_cast<double>(h.total_ns()) /
                    static_cast<double>(host_total)
              : 0.0;
      w.kv("host_share_pct", host_share);
      if (prof != nullptr) {
        const PhaseTotals v =
            prof->phase_totals(static_cast<PhaseId>(p), 0, /*any_level=*/true);
        const double vus = v.compute + v.comm + v.io + v.idle;
        w.kv("virtual_us", vus);
        const double virtual_share =
            virtual_total_us > 0.0 ? 100.0 * vus / virtual_total_us : 0.0;
        w.kv("virtual_share_pct", virtual_share);
        w.kv("divergence_pp", host_share - virtual_share);
      }
      w.end_object();
    }
  }
  w.end_array();

  w.end_object();
}

void write_host_report(std::ostream& os, const HostProfiler& host) {
  JsonWriter w(os);
  write_host(w, host);
  os << '\n';
}

// ------------------------------------------------------------- threads --

namespace {

/// One collector entry: headline sample count, live shard occupancy in
/// shard-id order, the fold-order provenance of past merges, and the
/// events the collector dropped for want of a shard.
void write_collector(JsonWriter& w, const char* name,
                     const std::vector<ShardSample>& shards,
                     const std::vector<ShardSample>& merged,
                     std::uint64_t dropped) {
  std::uint64_t samples = 0;
  for (const ShardSample& s : merged) samples += s.samples;
  for (const ShardSample& s : shards) samples += s.samples;
  w.begin_object();
  w.kv("name", name);
  w.kv("samples", samples);
  w.key("shards").begin_array();
  for (const ShardSample& s : shards) {
    w.begin_object();
    w.kv("shard", s.shard);
    w.kv("samples", s.samples);
    w.end_object();
  }
  w.end_array();
  w.key("merge_order").begin_array();
  for (const ShardSample& s : merged) {
    w.begin_object();
    w.kv("shard", s.shard);
    w.kv("samples", s.samples);
    w.end_object();
  }
  w.end_array();
  w.kv("dropped", dropped);
  w.end_object();
}

}  // namespace

void write_threads(JsonWriter& w, const Observability& o) {
  w.begin_object();
  w.kv("schema", "pdt-threads-v1");
  w.kv("hardware_concurrency",
       static_cast<int>(std::thread::hardware_concurrency()));
  w.kv("max_shards", kMaxShards);

  const ThreadRegistry::Stats reg = ThreadRegistry::instance().stats();
  w.key("registry").begin_object();
  w.kv("registered", reg.registered);
  w.kv("overflow", reg.overflow);
  w.kv("active", reg.active);
  w.kv("peak_active", reg.peak_active);
  w.end_object();

  w.key("collectors").begin_array();
  write_collector(w, "phase", o.profiler().shard_samples(),
                  o.profiler().merged_samples(), o.profiler().dropped());
  if (o.host_profiler() != nullptr) {
    write_collector(w, "host", o.host_profiler()->shard_samples(),
                    o.host_profiler()->merged_samples(),
                    o.host_profiler()->dropped());
  }
  write_collector(w, "metrics", o.metrics().shard_samples(),
                  o.metrics().merged_samples(), 0);
  write_collector(w, "mem", o.mem_ledger().shard_samples(),
                  o.mem_ledger().merged_samples(), o.mem_ledger().dropped());
  if (o.event_log() != nullptr) {
    const mpsim::EventRecorder& rec = *o.event_log();
    std::vector<ShardSample> shards;
    for (const mpsim::EventRecorder::WorkerStats& s : rec.worker_stats()) {
      shards.push_back(ShardSample{s.slot, s.recorded});
    }
    std::vector<ShardSample> merged;
    if (rec.merged_events() > 0) {
      merged.push_back(ShardSample{-1, rec.merged_events()});
    }
    write_collector(w, "events", shards, merged, rec.ring_dropped());
  }
  w.end_array();

  w.key("drops").begin_object();
  w.kv("phase", o.profiler().dropped());
  w.kv("mem", o.mem_ledger().dropped());
  if (o.host_profiler() != nullptr) {
    w.kv("host", o.host_profiler()->dropped());
    w.kv("host_clamped", o.host_profiler()->clamped());
  }
  if (o.event_log() != nullptr) {
    w.kv("event_ring_dropped", o.event_log()->ring_dropped());
  }
  w.end_object();

  w.key("locks").begin_array();
  for (const LockStats& l : ContentionRegistry::instance().stats()) {
    w.begin_object();
    w.kv("name", l.name);
    w.kv("acquisitions", l.acquisitions);
    w.kv("contended", l.contended);
    w.kv("wait_ns", l.wait_ns);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

void write_threads_report(std::ostream& os, const Observability& o) {
  JsonWriter w(os);
  write_threads(w, o);
  os << '\n';
}

// ----------------------------------------------------------------- mem --

void write_mem(JsonWriter& w, const std::vector<mpsim::MemStats>& per_rank,
               const mpsim::MemPredicted* predicted, const MemLedger* ledger,
               const PhaseProfiler* profiler, int top_k) {
  w.begin_object();
  w.kv("schema", "pdt-mem-v1");
  w.kv("num_ranks", static_cast<int>(per_rank.size()));

  // The memory bottleneck: the rank whose high-water mark is largest
  // (smallest such rank on ties, so the report is deterministic).
  std::int64_t max_peak = 0;
  std::int64_t total_peak = 0;
  int peak_rank = 0;
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    total_peak += per_rank[r].peak_total;
    if (per_rank[r].peak_total > max_peak) {
      max_peak = per_rank[r].peak_total;
      peak_rank = static_cast<int>(r);
    }
  }
  w.kv("max_rank_peak_bytes", max_peak);
  w.kv("peak_rank", peak_rank);
  w.kv("total_peak_bytes", total_peak);

  if (predicted != nullptr && !predicted->empty()) {
    w.key("predicted").begin_object();
    w.kv("records_bytes", predicted->records_bytes);
    w.kv("histogram_bytes", predicted->histogram_bytes);
    w.kv("scratch_bytes", predicted->scratch_bytes);
    w.kv("total_bytes", predicted->total());
    // Relative error of the measured bottleneck against the analytic
    // per-rank bound (positive = measured above prediction).
    w.kv("max_rank_error_pct",
         100.0 *
             (static_cast<double>(max_peak) -
              static_cast<double>(predicted->total())) /
             static_cast<double>(predicted->total()));
    w.end_object();
  }

  w.key("per_rank").begin_array();
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    const mpsim::MemStats& m = per_rank[r];
    w.begin_object();
    w.kv("rank", static_cast<int>(r));
    w.kv("live_bytes", m.live_total);
    w.kv("peak_bytes", m.peak_total);
    w.key("tags").begin_array();
    for (int t = 0; t < mpsim::kNumMemTags; ++t) {
      const auto tag = static_cast<mpsim::MemTag>(t);
      if (m.peak_for(tag) == 0) continue;
      w.begin_object();
      w.kv("tag", mpsim::to_string(tag));
      w.kv("live_bytes", m.live_for(tag));
      w.kv("peak_bytes", m.peak_for(tag));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // Per-structure summary over ranks: is this structure's footprint
  // distributed (max-rank peak shrinks with P) or replicated (it
  // doesn't)? The report-side scalability verdict compares these across
  // runs at different P.
  w.key("tags").begin_array();
  for (int t = 0; t < mpsim::kNumMemTags; ++t) {
    const auto tag = static_cast<mpsim::MemTag>(t);
    std::int64_t tag_max = 0;
    std::int64_t tag_total = 0;
    for (const mpsim::MemStats& m : per_rank) {
      tag_max = std::max(tag_max, m.peak_for(tag));
      tag_total += m.peak_for(tag);
    }
    if (tag_total == 0) continue;
    w.begin_object();
    w.kv("tag", mpsim::to_string(tag));
    w.kv("max_rank_peak_bytes", tag_max);
    w.kv("total_peak_bytes", tag_total);
    w.end_object();
  }
  w.end_array();

  if (ledger != nullptr) {
    w.key("ledger").begin_object();
    w.kv("events", ledger->events());
    std::int64_t charged = 0;
    std::int64_t released = 0;
    for (int r = 0; r < ledger->num_ranks(); ++r) {
      charged += ledger->charged_bytes(r);
      released += ledger->released_bytes(r);
    }
    w.kv("charged_bytes", charged);
    w.kv("released_bytes", released);

    const std::vector<MemLedger::Row> rows = ledger->rows();
    w.key("segments").begin_array();
    for (const MemLedger::Row& row : rows) {
      if (row.peak == 0 && row.live == 0) continue;
      w.begin_object();
      w.kv("tag", mpsim::to_string(row.tag));
      w.kv("phase", comm_phase_name(profiler, row.phase));
      w.kv("level", row.level);
      w.kv("rank", row.rank);
      w.kv("live_bytes", row.live);
      w.kv("peak_bytes", row.peak);
      w.end_object();
    }
    w.end_array();

    // Top-k attribution cells by peak bytes (rows() order breaks ties,
    // so the list is deterministic).
    std::vector<MemLedger::Row> top = rows;
    std::stable_sort(top.begin(), top.end(),
                     [](const MemLedger::Row& a, const MemLedger::Row& b) {
                       return a.peak > b.peak;
                     });
    if (top_k >= 0 && static_cast<std::size_t>(top_k) < top.size()) {
      top.resize(static_cast<std::size_t>(top_k));
    }
    w.key("top_segments").begin_array();
    for (const MemLedger::Row& row : top) {
      if (row.peak == 0) continue;
      w.begin_object();
      w.kv("tag", mpsim::to_string(row.tag));
      w.kv("phase", comm_phase_name(profiler, row.phase));
      w.kv("level", row.level);
      w.kv("rank", row.rank);
      w.kv("peak_bytes", row.peak);
      w.kv("share_pct", max_peak > 0 ? 100.0 * static_cast<double>(row.peak) /
                                           static_cast<double>(max_peak)
                                     : 0.0);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.end_object();
}

}  // namespace pdt::obs
