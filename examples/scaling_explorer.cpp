// Interactive scaling exploration: pick a formulation, dataset size, and
// processor count range, and see where each formulation's time goes
// (compute / communication / idle) — the breakdown behind Figure 6.
//
// Build & run:  ./build/examples/scaling_explorer [sync|part|hybrid] [N] [Pmax]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

using namespace pdt;

int main(int argc, char** argv) {
  core::Formulation f = core::Formulation::Hybrid;
  if (argc > 1) {
    if (std::strcmp(argv[1], "sync") == 0) {
      f = core::Formulation::Sync;
    } else if (std::strcmp(argv[1], "part") == 0) {
      f = core::Formulation::Partitioned;
    } else if (std::strcmp(argv[1], "hybrid") == 0) {
      f = core::Formulation::Hybrid;
    } else {
      std::fprintf(stderr, "usage: %s [sync|part|hybrid] [N] [Pmax]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::size_t n =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 40000;
  const int pmax = argc > 3 ? std::atoi(argv[3]) : 32;

  std::printf("formulation: %s | N = %zu | simulated IBM SP-2 cost model\n",
              core::to_string(f), n);
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = 7}),
      data::quest_paper_bins());

  core::ParOptions base;
  const core::ParResult serial = core::build_serial(ds, base);
  std::printf("serial baseline: %.1f ms | tree %d nodes, depth %d\n\n",
              serial.parallel_time / 1000.0, serial.tree.num_nodes(),
              serial.tree.depth());

  std::printf("%4s %12s %8s %6s | %9s %9s %9s | %7s %7s\n", "P",
              "time(ms)", "speedup", "eff", "compute%", "comm%", "idle%",
              "splits", "moved");
  for (int p = 1; p <= pmax; p *= 2) {
    core::ParOptions opt;
    opt.num_procs = p;
    const core::ParResult res =
        p == 1 ? serial : core::build(f, ds, opt);
    const double busy_total = res.totals.compute_time +
                              res.totals.comm_time + res.totals.idle_time;
    std::printf("%4d %12.1f %8.2f %5.0f%% | %8.1f%% %8.1f%% %8.1f%% | %7d %7lld\n",
                p, res.parallel_time / 1000.0,
                serial.parallel_time / res.parallel_time,
                serial.parallel_time / res.parallel_time / p * 100.0,
                res.totals.compute_time / busy_total * 100.0,
                res.totals.comm_time / busy_total * 100.0,
                res.totals.idle_time / busy_total * 100.0,
                res.partition_splits,
                static_cast<long long>(res.records_moved));
  }
  std::printf("\n(compute/comm/idle are shares of total processor-time)\n");
  return 0;
}
