// Interactive scaling exploration: pick a formulation, dataset size, and
// processor count range, and see where each formulation's time goes
// (compute / communication / idle) — the breakdown behind Figure 6.
//
// Build & run:  ./build/examples/scaling_explorer [sync|part|hybrid] [N] [Pmax]
//
// Host profiling (DESIGN.md §9):
//   --host                  pair every simulated phase with the wall time
//                           this host actually spent, and rank where the
//                           cost model and the host disagree the most
//
// Fault injection (DESIGN.md §7) — any of these arms checkpoint/recovery:
//   --fail=R@L              rank R fail-stops when its group enters level L
//   --straggler=R@L0:L1:F   rank R's charges cost Fx over levels [L0, L1]
//   --delay=A-BxF           link A<->B costs Fx
//   PDT_FAULT_SEED=<seed>   seeded random single-failure scenario per P
//
// Durable checkpoints + crash-restart (DESIGN.md §13):
//   --ckpt-dir=DIR          write a pdt-ckpt-v1 epoch per level to DIR/P<p>
//   --resume                resume each P>1 run from its latest valid epoch
//   --resume-epoch=N        cap the resume at epoch N (later epochs ignored)
//   --crash-after=N         _Exit(137) right after committing epoch N — the
//                           crash half of the CI kill-and-resume gate
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <span>
#include <system_error>
#include <string>
#include <vector>

#include <fstream>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/metrics.hpp"
#include "dtree/serialize.hpp"
#include "mpsim/fault.hpp"
#include "obs/blame.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"

using namespace pdt;

// The three longest critical-path segments: where did the time this run
// could not parallelize away actually go?
static void print_top_segments(const obs::Observability& o) {
  const auto path = o.critical_path().path();
  if (path.segments.empty() || path.max_clock_us <= 0.0) return;
  auto top = path.segments;
  std::sort(top.begin(), top.end(),
            [](const obs::PathSegment& a, const obs::PathSegment& b) {
              if (a.dur_us() != b.dur_us()) return a.dur_us() > b.dur_us();
              return a.start_us < b.start_us;
            });
  std::printf("     critical path (%zu segments, %llu handoffs), top 3:\n",
              path.segments.size(),
              static_cast<unsigned long long>(path.handoffs));
  for (std::size_t i = 0; i < top.size() && i < 3; ++i) {
    const obs::PathSegment& s = top[i];
    const std::string phase(o.profiler().phase_name(s.phase));
    std::printf("       %4.1f%%  rank %d  %s",
                100.0 * s.dur_us() / path.max_clock_us, s.rank,
                phase.c_str());
    if (s.level != obs::kNoLevel) std::printf(" (level %d)", s.level);
    std::printf("  %s  %.1f ms\n", mpsim::to_string(s.kind),
                s.dur_us() / 1000.0);
  }
}

// The three heaviest idle-blame edges: who was everyone waiting on, and
// during which of the holder's phases? (See DESIGN.md §8.)
static void print_top_blame(const obs::Observability& o) {
  if (o.event_log() == nullptr) return;
  const std::vector<obs::BlameEdge> edges = obs::blame_edges(*o.event_log());
  if (edges.empty()) return;
  std::printf("     wait-for blame, top 3:\n");
  for (std::size_t i = 0; i < edges.size() && i < 3; ++i) {
    const obs::BlameEdge& e = edges[i];
    std::string held;
    if (e.holder_phase == obs::kRankFailurePhase) {
      held = "(rank failure)";
    } else {
      held = std::string(
          o.event_log()->phase_names()[static_cast<std::size_t>(
              e.holder_phase)]);
    }
    std::printf("       %4.1f%%  rank %d (level %d) waits on rank %d  %s  "
                "%.1f ms\n",
                e.idle_pct, e.idler, e.idler_level, e.holder, held.c_str(),
                e.idle_us / 1000.0);
  }
}

// The --host view: total wall time this host spent inside the run, the
// per-phase host/virtual share split, and the three (phase, level)
// segments where the cost model and the host diverge the most. Host and
// virtual cells share (phase, level, rank) keys (DESIGN.md §9), so the
// pairing is exact, not heuristic.
static void print_host_summary(const obs::Observability& o) {
  const obs::HostProfiler* h = o.host_profiler();
  if (h == nullptr || h->total_ns() <= 0) return;
  const std::vector<std::string>& names = o.profiler().phase_names();
  const double host_total = static_cast<double>(h->total_ns());

  // Per-phase split (levels summed), virtual shares alongside.
  double virt_total = 0.0;
  std::vector<double> virt_us(names.size(), 0.0);
  std::vector<double> host_ns(names.size(), 0.0);
  for (std::size_t p = 0; p < names.size(); ++p) {
    const obs::PhaseId id = static_cast<obs::PhaseId>(p);
    virt_us[p] = o.profiler().phase_totals(id, obs::kNoLevel, true).total();
    virt_total += virt_us[p];
    host_ns[p] = static_cast<double>(
        h->phase_totals(id, obs::kNoLevel, true).total_ns());
  }
  std::printf("     host wall time %.2f ms (%s), per phase:\n",
              host_total / 1e6, h->clock_name());
  for (std::size_t p = 0; p < names.size(); ++p) {
    if (host_ns[p] <= 0.0 && virt_us[p] <= 0.0) continue;
    std::printf("       %-18s %8.2f ms  %5.1f%% host | %5.1f%% virtual\n",
                names[p].c_str(), host_ns[p] / 1e6,
                100.0 * host_ns[p] / host_total,
                virt_total > 0.0 ? 100.0 * virt_us[p] / virt_total : 0.0);
  }

  // Divergence ranking over (phase, level) segments: + means the segment
  // is dearer on this host than the cost model says.
  struct Seg {
    obs::PhaseId phase = 0;
    int level = obs::kNoLevel;
    double host_ns = 0.0;
    double pp = 0.0;  // host share minus virtual share, in points
  };
  std::vector<Seg> segs;
  for (const obs::HostProfiler::Row& row : h->rows()) {
    if (!segs.empty() && segs.back().phase == row.phase &&
        segs.back().level == row.level) {
      segs.back().host_ns += static_cast<double>(row.totals.total_ns());
    } else {
      segs.push_back({row.phase, row.level,
                      static_cast<double>(row.totals.total_ns()), 0.0});
    }
  }
  for (Seg& s : segs) {
    const double vus = o.profiler().phase_totals(s.phase, s.level).total();
    const double host_share = 100.0 * s.host_ns / host_total;
    const double virt_share =
        virt_total > 0.0 ? 100.0 * vus / virt_total : 0.0;
    s.pp = host_share - virt_share;
  }
  std::stable_sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return std::fabs(a.pp) > std::fabs(b.pp);
  });
  std::printf("     top simulated-vs-real divergence (+ = dearer on this "
              "host):\n");
  for (std::size_t i = 0; i < segs.size() && i < 3; ++i) {
    const Seg& s = segs[i];
    const std::string phase(o.profiler().phase_name(s.phase));
    std::printf("       %+5.1fpp  %s", s.pp, phase.c_str());
    if (s.level != obs::kNoLevel) std::printf(" (level %d)", s.level);
    std::printf("  %.2f ms host\n", s.host_ns / 1e6);
  }
}

// The heaviest-loaded rank's memory and its three largest (phase, level)
// segments: which structure, during which phase, owns the footprint?
static void print_top_memory(const obs::Observability& o,
                             const core::ParResult& res) {
  int peak_rank = 0;
  for (std::size_t r = 1; r < res.mem.size(); ++r) {
    if (res.mem[r].peak_total > res.mem[peak_rank].peak_total) {
      peak_rank = static_cast<int>(r);
    }
  }
  const std::int64_t peak = res.mem[peak_rank].peak_total;
  if (peak <= 0) return;
  std::printf("     peak memory %.0f KiB on rank %d, top segments:\n",
              static_cast<double>(peak) / 1024.0, peak_rank);
  for (const obs::MemLedger::Row& s :
       o.mem_ledger().top_segments(peak_rank, 3)) {
    const std::string phase(o.profiler().phase_name(s.phase));
    std::printf("       %4.1f%%  %-16s %s",
                100.0 * static_cast<double>(s.peak) /
                    static_cast<double>(peak),
                mpsim::to_string(s.tag), phase.c_str());
    if (s.level != obs::kNoLevel) std::printf(" (level %d)", s.level);
    std::printf("  %.1f KiB\n", static_cast<double>(s.peak) / 1024.0);
  }
}

// One-line model identity after each run: the content digest must match
// across every formulation and P growing this workload (pdt-tree diff
// turns a mismatch into a failing gate), alongside shape and held-out
// accuracy. PDT_MODEL_OUT=<prefix> additionally dumps the pdt-model-v1
// document to <prefix>.P<p>.model.json for offline pdt-tree runs.
static void print_model_line(const core::ParResult& res, core::Formulation f,
                             int p, std::size_t n,
                             const data::Dataset& eval_ds,
                             std::uint64_t eval_seed,
                             std::span<const dtree::SplitAuditEntry> audit) {
  const dtree::Evaluation ev = dtree::evaluate(res.tree, eval_ds);
  const std::string digest = dtree::model_digest(res.tree);
  std::printf("     model %.12s...  %d nodes, %d leaves, depth %d, "
              "held-out accuracy %.4f\n",
              digest.c_str(), res.tree.num_nodes(), res.tree.num_leaves(),
              res.tree.depth(), ev.accuracy());
  const char* model_out = std::getenv("PDT_MODEL_OUT");
  if (model_out == nullptr || *model_out == '\0') return;
  dtree::ModelMeta meta;
  meta.harness = "scaling_explorer";
  meta.tag = "P" + std::to_string(p);
  meta.formulation = core::to_string(f);
  meta.procs = p;
  meta.quest_function = 2;
  meta.train_seed = 7;
  meta.train_rows = static_cast<std::int64_t>(n);
  meta.paper_bins = true;
  meta.eval_seed = eval_seed;
  meta.eval_rows = static_cast<std::int64_t>(eval_ds.num_rows());
  const std::string path =
      std::string(model_out) + ".P" + std::to_string(p) + ".model.json";
  std::ofstream ms(path);
  if (ms) {
    ms << dtree::model_json(res.tree, meta, audit, ev.accuracy());
    std::printf("     [json] wrote %s (inspect with pdt-tree)\n",
                path.c_str());
  }
}

int main(int argc, char** argv) {
  // Split fault/host flags from positional arguments.
  mpsim::FaultPlan flag_plan;
  bool host = false;
  std::string ckpt_dir;
  bool resume = false;
  int resume_epoch = -1;
  int crash_after = -1;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    int a = 0;
    int b = 0;
    int c = 0;
    double factor = 0.0;
    if (std::strcmp(argv[i], "--host") == 0) {
      host = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(argv[i], "--ckpt-dir=", 11) == 0) {
      ckpt_dir = argv[i] + 11;
    } else if (std::sscanf(argv[i], "--resume-epoch=%d", &a) == 1) {
      resume_epoch = a;
    } else if (std::sscanf(argv[i], "--crash-after=%d", &a) == 1) {
      crash_after = a;
    } else if (std::sscanf(argv[i], "--fail=%d@%d", &a, &b) == 2) {
      flag_plan.fail_stop(a, b);
    } else if (std::sscanf(argv[i], "--straggler=%d@%d:%d:%lf", &a, &b, &c,
                           &factor) == 4) {
      flag_plan.straggler(a, b, c, factor);
    } else if (std::sscanf(argv[i], "--delay=%d-%dx%lf", &a, &b, &factor) ==
               3) {
      flag_plan.delay_link(a, b, factor);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "usage: %s [sync|part|hybrid] [N] [Pmax] [--host] "
                   "[--fail=R@L] [--straggler=R@L0:L1:F] [--delay=A-BxF] "
                   "[--ckpt-dir=DIR] [--resume] [--resume-epoch=N] "
                   "[--crash-after=N]\n",
                   argv[0]);
      return 2;
    } else {
      pos.push_back(argv[i]);
    }
  }
  const char* seed_env = std::getenv("PDT_FAULT_SEED");
  const bool have_seed = seed_env != nullptr && *seed_env != '\0';
  const std::uint64_t fault_seed =
      have_seed ? std::strtoull(seed_env, nullptr, 10) : 0;

  core::Formulation f = core::Formulation::Hybrid;
  if (!pos.empty()) {
    if (std::strcmp(pos[0], "sync") == 0) {
      f = core::Formulation::Sync;
    } else if (std::strcmp(pos[0], "part") == 0) {
      f = core::Formulation::Partitioned;
    } else if (std::strcmp(pos[0], "hybrid") == 0) {
      f = core::Formulation::Hybrid;
    } else {
      std::fprintf(stderr, "usage: %s [sync|part|hybrid] [N] [Pmax]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::size_t n =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1])) : 40000;
  const int pmax = pos.size() > 2 ? std::atoi(pos[2]) : 32;

  std::printf("formulation: %s | N = %zu | simulated IBM SP-2 cost model\n",
              core::to_string(f), n);
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = 7}),
      data::quest_paper_bins());

  core::ParOptions base;
  const core::ParResult serial = core::build_serial(ds, base);
  std::printf("serial baseline: %.1f ms | tree %d nodes, depth %d\n\n",
              serial.parallel_time / 1000.0, serial.tree.num_nodes(),
              serial.tree.depth());

  // Held-out sample for the per-run model line: same generator pipeline,
  // offset seed (mirrors the bench harnesses' eval provenance).
  const std::uint64_t eval_seed = 7 + 9000;
  const std::size_t eval_rows = static_cast<std::size_t>(
      std::clamp<std::int64_t>(static_cast<std::int64_t>(n) / 5, 1000,
                               20000));
  const data::Dataset eval_ds = data::discretize_uniform(
      data::quest_generate(eval_rows, {.function = 2, .seed = eval_seed}),
      data::quest_paper_bins());

  std::printf("%4s %12s %8s %6s | %9s %9s %9s | %7s %7s\n", "P",
              "time(ms)", "speedup", "eff", "compute%", "comm%", "idle%",
              "splits", "moved");
  for (int p = 1; p <= pmax; p *= 2) {
    core::ParOptions opt;
    opt.num_procs = p;
    obs::Observability o;  // fresh ledger + tracer per processor count
    o.enable_event_log();  // feeds the wait-for blame analysis below
    if (host) o.enable_host_profiler();
    // Audit split decisions only when the run will be dumped — the model
    // dump then records per-rank feeds and winner/runner-up margins.
    const char* model_out = std::getenv("PDT_MODEL_OUT");
    if (model_out != nullptr && *model_out != '\0') o.enable_split_audit();
    if (p > 1) opt.obs = &o;
    // Seeded random scenario is drawn per processor count (the victim
    // rank must exist); explicit flags ride along unchanged.
    mpsim::FaultPlan plan =
        have_seed ? mpsim::FaultPlan::random(fault_seed, p, 6)
                  : mpsim::FaultPlan();
    for (const mpsim::FailStop& fs : flag_plan.fail_stops()) {
      plan.fail_stop(fs.rank, fs.level);
    }
    for (const mpsim::Straggler& s : flag_plan.stragglers()) {
      plan.straggler(s.rank, s.from_level, s.to_level, s.factor);
    }
    for (const mpsim::LinkDelay& d : flag_plan.link_delays()) {
      plan.delay_link(d.a, d.b, d.factor);
    }
    if (p > 1 && !plan.empty()) opt.fault = &plan;
    if (p > 1 && !ckpt_dir.empty()) {
      // Per-P subdirectory: the loop reruns the same workload at every
      // processor count, and mixing their epoch sequences in one
      // directory would make resume pick up another run's frontier.
      opt.ckpt_dir = ckpt_dir + "/P" + std::to_string(p);
      std::error_code ec;
      std::filesystem::create_directories(opt.ckpt_dir, ec);
      opt.resume = resume;
      opt.resume_epoch = resume_epoch;
      opt.ckpt_crash_epoch = crash_after;
    }
    const core::ParResult res =
        p == 1 ? serial : core::build(f, ds, opt);
    const double busy_total = res.totals.compute_time +
                              res.totals.comm_time + res.totals.idle_time;
    std::printf("%4d %12.1f %8.2f %5.0f%% | %8.1f%% %8.1f%% %8.1f%% | %7d %7lld\n",
                p, res.parallel_time / 1000.0,
                serial.parallel_time / res.parallel_time,
                serial.parallel_time / res.parallel_time / p * 100.0,
                res.totals.compute_time / busy_total * 100.0,
                res.totals.comm_time / busy_total * 100.0,
                res.totals.idle_time / busy_total * 100.0,
                res.partition_splits,
                static_cast<long long>(res.records_moved));
    print_model_line(res, f, p, n, eval_ds, eval_seed,
                     p > 1 && o.split_audit() != nullptr
                         ? std::span<const dtree::SplitAuditEntry>(
                               o.split_audit()->entries())
                         : std::span<const dtree::SplitAuditEntry>{});
    if (p > 1) {
      if (opt.fault != nullptr) {
        std::printf("     fault plan: %s\n", opt.fault->describe().c_str());
        const core::RecoveryStats& rc = res.recovery;
        std::printf("     recovery: %d checkpoints (%.0f KiB, %.1f ms io), "
                    "%d failures, detect %.1f ms, recover %.1f ms, "
                    "%lld records redistributed, tree %s serial\n",
                    rc.checkpoints,
                    static_cast<double>(rc.checkpoint_bytes) / 1024.0,
                    rc.checkpoint_io_us / 1000.0, rc.failures,
                    rc.detect_us / 1000.0, rc.recovery_us / 1000.0,
                    static_cast<long long>(rc.records_redistributed),
                    res.tree.same_as(serial.tree) ? "matches" : "DIFFERS from");
      }
      if (!opt.ckpt_dir.empty()) {
        const core::RecoveryStats& rc = res.recovery;
        std::printf("     durable: %d epoch(s) (%.0f KiB, %.1f ms io) -> %s\n",
                    rc.durable_checkpoints,
                    static_cast<double>(rc.durable_bytes) / 1024.0,
                    rc.durable_io_us / 1000.0, opt.ckpt_dir.c_str());
        if (rc.resumed) {
          std::printf("     resumed from epoch %d (%d skipped, %lld records, "
                      "%.1f ms io), tree %s serial\n",
                      rc.resume_epoch, rc.resume_skipped,
                      static_cast<long long>(rc.resume_records),
                      rc.resume_io_us / 1000.0,
                      res.tree.same_as(serial.tree) ? "matches"
                                                    : "DIFFERS from");
        } else if (resume) {
          std::printf("     resume requested but no valid checkpoint found; "
                      "started fresh\n");
        }
      }
      print_top_segments(o);
      print_top_blame(o);
      print_top_memory(o, res);
      if (host) print_host_summary(o);
      // PDT_EVENTS_OUT=<prefix> dumps each run's pdt-events-v1 log to
      // <prefix>.P<p>.events.json for offline pdt-replay what-ifs.
      const char* events_out = std::getenv("PDT_EVENTS_OUT");
      if (events_out != nullptr && *events_out != '\0' &&
          o.event_log() != nullptr) {
        const std::string path =
            std::string(events_out) + ".P" + std::to_string(p) +
            ".events.json";
        std::ofstream es(path);
        if (es) {
          obs::EventLogMeta meta;
          meta.formulation = core::to_string(f);
          meta.workload = "scaling_explorer";
          meta.n = static_cast<std::int64_t>(ds.num_rows());
          meta.procs = p;
          obs::write_events_report(es, *o.event_log(), meta);
          std::printf("     [json] wrote %s (replay with pdt-replay)\n",
                      path.c_str());
        }
      }
    }
  }
  std::printf("\n(compute/comm/idle are shares of total processor-time)\n");
  return 0;
}
