// A guided tour of the three parallel formulations on a 4-processor
// simulated machine, replaying the schematics of the paper's Figures 2-5:
//
//   Figure 2 — synchronous construction: every level is a cooperative
//              histogram reduction over all four processors;
//   Figure 3 — partitioned construction: the processor group fractures as
//              subtrees are handed off;
//   Figures 4/5 — hybrid: a synchronous prefix, then a binary partition of
//              processors and frontier when communication justifies it.
//
// The mpsim event trace drives the narration.
//
// Build & run:  ./build/examples/formulations_tour
#include <cstdio>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

using namespace pdt;

namespace {

void replay_trace(const core::ParResult& res, std::size_t max_events) {
  if (res.trace.empty()) return;
  std::printf("event trace (first %zu of %zu):\n",
              std::min(max_events, res.trace.size()), res.trace.size());
  for (std::size_t i = 0; i < res.trace.size() && i < max_events; ++i) {
    const mpsim::TraceEvent& ev = res.trace[i];
    std::printf("  t=%9.0fus  procs[%d..%d]  %-15s %8.0f words  %s\n",
                ev.time, ev.group_base, ev.group_base + ev.group_size - 1,
                mpsim::to_string(ev.kind), ev.words, ev.detail.c_str());
  }
}

void narrate(const char* title, const core::ParResult& res) {
  std::printf("\n--- %s ---\n", title);
  std::printf("virtual runtime: %.0f us | tree: %d nodes, depth %d\n",
              res.parallel_time, res.tree.num_nodes(), res.tree.depth());
  std::printf("partition splits: %d | rejoins: %d | records moved: %lld\n",
              res.partition_splits, res.rejoins,
              static_cast<long long>(res.records_moved));
  std::printf("histogram words reduced: %.0f\n", res.histogram_words);
  std::printf("%-6s %12s %12s %12s\n", "rank", "compute(us)", "comm(us)",
              "idle(us)");
  for (std::size_t r = 0; r < res.per_rank.size(); ++r) {
    const mpsim::RankStats& s = res.per_rank[r];
    std::printf("%-6zu %12.0f %12.0f %12.0f\n", r, s.compute_time,
                s.comm_time, s.idle_time);
  }
}

}  // namespace

int main() {
  // A small function-2 workload, discretized as in the paper's Figure 6/7
  // experiments.
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(8000, {.function = 2, .seed = 99}),
      data::quest_paper_bins());
  std::printf("workload: %zu records, 9 discrete attributes, 2 classes\n",
              ds.num_rows());

  core::ParOptions opt;
  opt.num_procs = 4;
  opt.trace = true;

  std::printf("\n=== Figure 2: Synchronous Tree Construction ===\n");
  std::printf("All four processors expand every node together; class\n");
  std::printf("histograms are all-reduced after every buffer flush.\n");
  const core::ParResult sync = core::build_sync(ds, opt);
  narrate("synchronous, P=4", sync);
  replay_trace(sync, 6);

  std::printf("\n=== Figure 3: Partitioned Tree Construction ===\n");
  std::printf("After each cooperative expansion the group splits and\n");
  std::printf("records are shuffled to the owners of each subtree.\n");
  const core::ParResult part = core::build_partitioned(ds, opt);
  narrate("partitioned, P=4", part);
  replay_trace(part, 8);

  std::printf("\n=== Figures 4-5: Hybrid Formulation ===\n");
  std::printf("Synchronous until accumulated communication reaches the\n");
  std::printf("moving + load-balancing cost, then a binary partition.\n");
  const core::ParResult hybrid = core::build_hybrid(ds, opt);
  narrate("hybrid, P=4", hybrid);
  replay_trace(hybrid, 12);

  const core::ParResult serial = core::build_serial(ds, opt);
  std::printf("\n=== Summary (serial baseline: %.0f us) ===\n",
              serial.parallel_time);
  std::printf("%-14s %12s %9s\n", "formulation", "runtime(us)", "speedup");
  std::printf("%-14s %12.0f %9.2f\n", "synchronous", sync.parallel_time,
              serial.parallel_time / sync.parallel_time);
  std::printf("%-14s %12.0f %9.2f\n", "partitioned", part.parallel_time,
              serial.parallel_time / part.parallel_time);
  std::printf("%-14s %12.0f %9.2f\n", "hybrid", hybrid.parallel_time,
              serial.parallel_time / hybrid.parallel_time);

  const bool same = sync.tree.same_as(part.tree) &&
                    part.tree.same_as(hybrid.tree) &&
                    hybrid.tree.same_as(serial.tree);
  std::printf("\nall four runs grew the identical tree: %s\n",
              same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}
