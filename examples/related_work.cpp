// Tour of the related-work schemes the paper surveys (Section 2.2), each
// run on the same workload so their trade-offs are visible side by side:
// DP-att's attribute ceiling, PDT's host bottleneck, parallel SPRINT's
// replicated hash table vs. ScalParC's distributed one — and why the
// hybrid wins anyway.
//
// Build & run:  ./build/examples/related_work
#include <cstdio>

#include "alist/parallel.hpp"
#include "alist/presorted_builder.hpp"
#include "core/baselines.hpp"
#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"

using namespace pdt;

int main() {
  const std::size_t n = 20000;
  const data::Dataset raw =
      data::quest_generate(n, {.function = 2, .seed = 27});
  const data::Dataset binned =
      data::discretize_uniform(raw, data::quest_paper_bins());
  std::printf("workload: %zu Quest function-2 records, P = 8 simulated "
              "SP-2 processors\n\n", n);

  core::ParOptions opt;
  opt.num_procs = 8;
  const core::ParResult serial = core::build_serial(binned, opt);

  std::printf("%-26s %12s %8s %9s %10s\n", "scheme", "time(ms)", "speedup",
              "comm(ms)", "idle(ms)");
  auto print = [&](const char* name, const core::ParResult& r) {
    std::printf("%-26s %12.1f %8.2f %9.1f %10.1f\n", name,
                r.parallel_time / 1000.0, serial.parallel_time / r.parallel_time,
                r.totals.comm_time / 1000.0, r.totals.idle_time / 1000.0);
  };
  print("serial", serial);
  print("synchronous (DP-rec)", core::build_sync(binned, opt));
  print("attribute part. (DP-att)", core::build_vertical(binned, opt));
  print("host-worker (PDT)", core::build_host_worker(binned, opt));
  print("partitioned", core::build_partitioned(binned, opt));
  print("hybrid (this paper)", core::build_hybrid(binned, opt));

  std::printf("\nattribute-list family (exact thresholds on the raw "
              "continuous data):\n");
  alist::ParallelSprintOptions aopt;
  aopt.num_procs = 8;
  aopt.grow.max_depth = 14;
  aopt.scheme = alist::HashTableScheme::ReplicatedSprint;
  const auto sprint = alist::build_parallel_sprint(raw, aopt);
  aopt.scheme = alist::HashTableScheme::DistributedScalParC;
  const auto scalparc = alist::build_parallel_sprint(raw, aopt);
  std::printf("  parallel SPRINT : %8.1f ms, hash %8.0f words/proc\n",
              sprint.parallel_time / 1000.0, sprint.peak_hash_words_per_proc);
  std::printf("  ScalParC        : %8.1f ms, hash %8.0f words/proc\n",
              scalparc.parallel_time / 1000.0,
              scalparc.peak_hash_words_per_proc);

  // Every scheme grew the same tree as its own serial reference.
  const alist::AttributeLists lists(raw);
  const dtree::Tree aref = alist::grow_presorted(lists, aopt.grow);
  std::printf("\nattribute-list runs match the serial presorted scan: %s\n",
              sprint.tree.same_as(aref) && scalparc.tree.same_as(aref)
                  ? "yes" : "NO (bug!)");
  return 0;
}
