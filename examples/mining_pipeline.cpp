// A realistic data-mining pipeline on the paper's workload: generate a
// Quest synthetic database (the paper's intro motivates retail targeting /
// fraud-style classification), discretize it, train the classifier with
// the hybrid parallel formulation on a simulated 16-processor machine,
// prune, evaluate on held-out data, and export the dataset to CSV.
//
// Build & run:  ./build/examples/mining_pipeline [function 1..10]
#include <cstdio>
#include <cstdlib>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/io.hpp"
#include "data/quest.hpp"
#include "dtree/metrics.hpp"
#include "dtree/prune.hpp"

using namespace pdt;

int main(int argc, char** argv) {
  const int function = argc > 1 ? std::atoi(argv[1]) : 2;
  if (function < 1 || function > 10) {
    std::fprintf(stderr, "usage: %s [function 1..10]\n", argv[0]);
    return 2;
  }
  const std::size_t train_n = 40000;
  const std::size_t test_n = 10000;

  std::printf("generating %zu training / %zu test records (function %d, "
              "5%% label noise)...\n", train_n, test_n, function);
  const data::QuestOptions train_opt{function, 1234, 0.05};
  const data::QuestOptions test_opt{function, 5678, 0.0};
  const data::Dataset raw_train = data::quest_generate(train_n, train_opt);
  const data::Dataset raw_test = data::quest_generate(test_n, test_opt);

  std::printf("discretizing continuous attributes (paper's bin counts)...\n");
  const data::Dataset train =
      data::discretize_uniform(raw_train, data::quest_paper_bins());
  const data::Dataset test =
      data::discretize_uniform(raw_test, data::quest_paper_bins());

  std::printf("training with the hybrid formulation on 16 simulated "
              "processors...\n");
  core::ParOptions opt;
  opt.num_procs = 16;
  opt.grow.min_records = 16;  // noise floor: don't chase single records
  core::ParResult res = core::build_hybrid(train, opt);
  std::printf("  virtual runtime %.1f ms, %d partition splits, %d rejoins\n",
              res.parallel_time / 1000.0, res.partition_splits, res.rejoins);
  std::printf("  tree: %d nodes, %d leaves, depth %d\n",
              res.tree.num_nodes(), res.tree.num_leaves(),
              res.tree.depth());

  const core::ParResult serial = core::build_serial(train, opt);
  std::printf("  speedup over serial: %.2fx (efficiency %.0f%%)\n",
              serial.parallel_time / res.parallel_time,
              serial.parallel_time / res.parallel_time / 16 * 100.0);

  dtree::Evaluation before = dtree::evaluate(res.tree, test);
  std::printf("\ntest accuracy before pruning: %.2f%%\n",
              before.accuracy() * 100.0);

  const dtree::PruneStats ps = dtree::prune(res.tree);
  dtree::Evaluation after = dtree::evaluate(res.tree, test);
  std::printf("pruning collapsed %d subtrees (%d -> %d leaves)\n",
              ps.subtrees_collapsed, ps.leaves_before, ps.leaves_after);
  std::printf("test accuracy after pruning:  %.2f%%\n",
              after.accuracy() * 100.0);

  std::printf("\nconfusion matrix (rows = actual, cols = predicted):\n");
  for (int a = 0; a < after.num_classes; ++a) {
    std::printf("  %-8s", train.schema().class_name(a).c_str());
    for (int p = 0; p < after.num_classes; ++p) {
      std::printf(" %8lld",
                  static_cast<long long>(after.confusion[static_cast<std::size_t>(
                      a * after.num_classes + p)]));
    }
    std::printf("\n");
  }

  const char* csv_path = "/tmp/pdtree_quest_sample.csv";
  data::save_csv_file(train, csv_path);
  std::printf("\ntraining set exported to %s\n", csv_path);
  return 0;
}
