// Quickstart: build a decision tree on the paper's Table-1 golf data.
//
// Reproduces, from the paper's Section 2.1:
//   * Table 1  — the training set itself
//   * Table 2  — class distribution of Outlook at the root
//   * Table 3  — binary-test class distributions of Humidity
//   * Figure 1 — Hunt's method: initial, intermediate, final tree
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <numeric>

#include "data/golf.hpp"
#include "dtree/builder.hpp"
#include "dtree/histogram.hpp"
#include "dtree/metrics.hpp"

using namespace pdt;

int main() {
  const data::Dataset golf = data::golf_dataset();
  const data::Schema& schema = golf.schema();

  std::printf("=== Table 1: the training data set ===\n");
  std::printf("%-10s %-6s %-9s %-6s %s\n", "Outlook", "Temp", "Humidity",
              "Windy", "Class");
  for (std::size_t i = 0; i < golf.num_rows(); ++i) {
    std::printf("%-10s %-6.0f %-9.0f %-6s %s\n",
                schema.attr(0).value_names[static_cast<std::size_t>(
                    golf.cat(data::golf_attr::kOutlook, i))].c_str(),
                golf.cont(data::golf_attr::kTemp, i),
                golf.cont(data::golf_attr::kHumidity, i),
                schema.attr(3).value_names[static_cast<std::size_t>(
                    golf.cat(data::golf_attr::kWindy, i))].c_str(),
                schema.class_name(golf.label(i)).c_str());
  }

  std::vector<data::RowId> rows(golf.num_rows());
  std::iota(rows.begin(), rows.end(), data::RowId{0});

  std::printf("\n=== Table 2: class distribution of Outlook at the root ===\n");
  const auto outlook = dtree::categorical_distribution(
      golf, rows, data::golf_attr::kOutlook);
  std::fputs(dtree::format_categorical_distribution(
                 golf, outlook, data::golf_attr::kOutlook).c_str(),
             stdout);

  std::printf("\n=== Table 3: binary tests on Humidity at the root ===\n");
  const auto humidity = dtree::continuous_binary_distribution(
      golf, rows, data::golf_attr::kHumidity);
  std::fputs(dtree::format_binary_distribution(
                 golf, humidity, data::golf_attr::kHumidity).c_str(),
             stdout);

  std::printf("\n=== Figure 1: Hunt's method ===\n");
  dtree::GrowOptions opt;
  opt.policy = dtree::SplitPolicy::Multiway;  // C4.5-style multiway splits

  std::printf("(a) initial tree: a single leaf predicting the majority\n");
  std::printf("  -> Play (9/5)\n");

  std::printf("\n(b) intermediate tree: one level grown (max_depth = 1)\n");
  dtree::GrowOptions one = opt;
  one.max_depth = 1;
  const dtree::Tree intermediate = dtree::grow_dfs_exact(golf, one);
  std::fputs(intermediate.to_string(schema).c_str(), stdout);

  std::printf("\n(c) final classification tree\n");
  const dtree::Tree tree = dtree::grow_dfs_exact(golf, opt);
  std::fputs(tree.to_string(schema).c_str(), stdout);

  const dtree::Evaluation ev = dtree::evaluate(tree, golf);
  std::printf("\ntraining accuracy: %.0f%% (%lld/%lld), %d nodes, depth %d\n",
              ev.accuracy() * 100.0, static_cast<long long>(ev.correct),
              static_cast<long long>(ev.total), tree.num_nodes(),
              tree.depth());
  return 0;
}
