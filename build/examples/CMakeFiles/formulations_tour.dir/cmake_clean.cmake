file(REMOVE_RECURSE
  "CMakeFiles/formulations_tour.dir/formulations_tour.cpp.o"
  "CMakeFiles/formulations_tour.dir/formulations_tour.cpp.o.d"
  "formulations_tour"
  "formulations_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formulations_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
