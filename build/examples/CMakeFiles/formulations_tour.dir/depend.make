# Empty dependencies file for formulations_tour.
# This may be replaced when dependencies are built.
