file(REMOVE_RECURSE
  "CMakeFiles/mining_pipeline.dir/mining_pipeline.cpp.o"
  "CMakeFiles/mining_pipeline.dir/mining_pipeline.cpp.o.d"
  "mining_pipeline"
  "mining_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
