# Empty dependencies file for mining_pipeline.
# This may be replaced when dependencies are built.
