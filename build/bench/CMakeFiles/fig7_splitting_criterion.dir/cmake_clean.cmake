file(REMOVE_RECURSE
  "CMakeFiles/fig7_splitting_criterion.dir/fig7_splitting_criterion.cpp.o"
  "CMakeFiles/fig7_splitting_criterion.dir/fig7_splitting_criterion.cpp.o.d"
  "fig7_splitting_criterion"
  "fig7_splitting_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_splitting_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
