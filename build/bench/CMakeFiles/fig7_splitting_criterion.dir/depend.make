# Empty dependencies file for fig7_splitting_criterion.
# This may be replaced when dependencies are built.
