file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_features.dir/ablation_hybrid_features.cpp.o"
  "CMakeFiles/ablation_hybrid_features.dir/ablation_hybrid_features.cpp.o.d"
  "ablation_hybrid_features"
  "ablation_hybrid_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
