# Empty dependencies file for ablation_hybrid_features.
# This may be replaced when dependencies are built.
