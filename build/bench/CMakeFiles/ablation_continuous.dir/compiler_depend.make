# Empty compiler generated dependencies file for ablation_continuous.
# This may be replaced when dependencies are built.
