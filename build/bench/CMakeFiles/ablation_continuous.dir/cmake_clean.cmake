file(REMOVE_RECURSE
  "CMakeFiles/ablation_continuous.dir/ablation_continuous.cpp.o"
  "CMakeFiles/ablation_continuous.dir/ablation_continuous.cpp.o.d"
  "ablation_continuous"
  "ablation_continuous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
