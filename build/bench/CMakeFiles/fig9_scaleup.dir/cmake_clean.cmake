file(REMOVE_RECURSE
  "CMakeFiles/fig9_scaleup.dir/fig9_scaleup.cpp.o"
  "CMakeFiles/fig9_scaleup.dir/fig9_scaleup.cpp.o.d"
  "fig9_scaleup"
  "fig9_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
