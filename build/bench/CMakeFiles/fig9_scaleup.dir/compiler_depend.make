# Empty compiler generated dependencies file for fig9_scaleup.
# This may be replaced when dependencies are built.
