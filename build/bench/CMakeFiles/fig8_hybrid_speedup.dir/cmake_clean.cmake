file(REMOVE_RECURSE
  "CMakeFiles/fig8_hybrid_speedup.dir/fig8_hybrid_speedup.cpp.o"
  "CMakeFiles/fig8_hybrid_speedup.dir/fig8_hybrid_speedup.cpp.o.d"
  "fig8_hybrid_speedup"
  "fig8_hybrid_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hybrid_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
