# Empty dependencies file for fig8_hybrid_speedup.
# This may be replaced when dependencies are built.
