
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtree/builder.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/builder.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/builder.cpp.o.d"
  "/root/repo/src/dtree/criteria.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/criteria.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/criteria.cpp.o.d"
  "/root/repo/src/dtree/histogram.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/histogram.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/histogram.cpp.o.d"
  "/root/repo/src/dtree/metrics.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/metrics.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/metrics.cpp.o.d"
  "/root/repo/src/dtree/prune.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/prune.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/prune.cpp.o.d"
  "/root/repo/src/dtree/slots.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/slots.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/slots.cpp.o.d"
  "/root/repo/src/dtree/split.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/split.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/split.cpp.o.d"
  "/root/repo/src/dtree/split_eval.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/split_eval.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/split_eval.cpp.o.d"
  "/root/repo/src/dtree/tree.cpp" "src/dtree/CMakeFiles/pdt_dtree.dir/tree.cpp.o" "gcc" "src/dtree/CMakeFiles/pdt_dtree.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/pdt_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
