# Empty dependencies file for pdt_dtree.
# This may be replaced when dependencies are built.
