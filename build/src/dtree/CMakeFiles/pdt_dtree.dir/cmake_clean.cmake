file(REMOVE_RECURSE
  "CMakeFiles/pdt_dtree.dir/builder.cpp.o"
  "CMakeFiles/pdt_dtree.dir/builder.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/criteria.cpp.o"
  "CMakeFiles/pdt_dtree.dir/criteria.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/histogram.cpp.o"
  "CMakeFiles/pdt_dtree.dir/histogram.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/metrics.cpp.o"
  "CMakeFiles/pdt_dtree.dir/metrics.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/prune.cpp.o"
  "CMakeFiles/pdt_dtree.dir/prune.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/slots.cpp.o"
  "CMakeFiles/pdt_dtree.dir/slots.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/split.cpp.o"
  "CMakeFiles/pdt_dtree.dir/split.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/split_eval.cpp.o"
  "CMakeFiles/pdt_dtree.dir/split_eval.cpp.o.d"
  "CMakeFiles/pdt_dtree.dir/tree.cpp.o"
  "CMakeFiles/pdt_dtree.dir/tree.cpp.o.d"
  "libpdt_dtree.a"
  "libpdt_dtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_dtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
