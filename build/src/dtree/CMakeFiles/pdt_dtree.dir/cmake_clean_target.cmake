file(REMOVE_RECURSE
  "libpdt_dtree.a"
)
