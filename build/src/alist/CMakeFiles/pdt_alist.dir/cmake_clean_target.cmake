file(REMOVE_RECURSE
  "libpdt_alist.a"
)
