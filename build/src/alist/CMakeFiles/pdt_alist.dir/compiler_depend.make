# Empty compiler generated dependencies file for pdt_alist.
# This may be replaced when dependencies are built.
