file(REMOVE_RECURSE
  "CMakeFiles/pdt_alist.dir/attribute_list.cpp.o"
  "CMakeFiles/pdt_alist.dir/attribute_list.cpp.o.d"
  "CMakeFiles/pdt_alist.dir/level.cpp.o"
  "CMakeFiles/pdt_alist.dir/level.cpp.o.d"
  "CMakeFiles/pdt_alist.dir/parallel.cpp.o"
  "CMakeFiles/pdt_alist.dir/parallel.cpp.o.d"
  "CMakeFiles/pdt_alist.dir/presorted_builder.cpp.o"
  "CMakeFiles/pdt_alist.dir/presorted_builder.cpp.o.d"
  "libpdt_alist.a"
  "libpdt_alist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_alist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
