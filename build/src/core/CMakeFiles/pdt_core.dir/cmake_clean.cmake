file(REMOVE_RECURSE
  "CMakeFiles/pdt_core.dir/baselines.cpp.o"
  "CMakeFiles/pdt_core.dir/baselines.cpp.o.d"
  "CMakeFiles/pdt_core.dir/cost_analysis.cpp.o"
  "CMakeFiles/pdt_core.dir/cost_analysis.cpp.o.d"
  "CMakeFiles/pdt_core.dir/frontier.cpp.o"
  "CMakeFiles/pdt_core.dir/frontier.cpp.o.d"
  "CMakeFiles/pdt_core.dir/hybrid_tree.cpp.o"
  "CMakeFiles/pdt_core.dir/hybrid_tree.cpp.o.d"
  "CMakeFiles/pdt_core.dir/partitioned_tree.cpp.o"
  "CMakeFiles/pdt_core.dir/partitioned_tree.cpp.o.d"
  "CMakeFiles/pdt_core.dir/runner.cpp.o"
  "CMakeFiles/pdt_core.dir/runner.cpp.o.d"
  "CMakeFiles/pdt_core.dir/sync_tree.cpp.o"
  "CMakeFiles/pdt_core.dir/sync_tree.cpp.o.d"
  "libpdt_core.a"
  "libpdt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
