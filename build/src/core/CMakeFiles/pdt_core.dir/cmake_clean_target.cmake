file(REMOVE_RECURSE
  "libpdt_core.a"
)
