
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/pdt_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/pdt_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/cost_analysis.cpp" "src/core/CMakeFiles/pdt_core.dir/cost_analysis.cpp.o" "gcc" "src/core/CMakeFiles/pdt_core.dir/cost_analysis.cpp.o.d"
  "/root/repo/src/core/frontier.cpp" "src/core/CMakeFiles/pdt_core.dir/frontier.cpp.o" "gcc" "src/core/CMakeFiles/pdt_core.dir/frontier.cpp.o.d"
  "/root/repo/src/core/hybrid_tree.cpp" "src/core/CMakeFiles/pdt_core.dir/hybrid_tree.cpp.o" "gcc" "src/core/CMakeFiles/pdt_core.dir/hybrid_tree.cpp.o.d"
  "/root/repo/src/core/partitioned_tree.cpp" "src/core/CMakeFiles/pdt_core.dir/partitioned_tree.cpp.o" "gcc" "src/core/CMakeFiles/pdt_core.dir/partitioned_tree.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/pdt_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/pdt_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/sync_tree.cpp" "src/core/CMakeFiles/pdt_core.dir/sync_tree.cpp.o" "gcc" "src/core/CMakeFiles/pdt_core.dir/sync_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtree/CMakeFiles/pdt_dtree.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/pdt_mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
