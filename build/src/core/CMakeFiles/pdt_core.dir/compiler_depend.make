# Empty compiler generated dependencies file for pdt_core.
# This may be replaced when dependencies are built.
