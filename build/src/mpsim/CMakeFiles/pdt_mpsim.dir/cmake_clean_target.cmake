file(REMOVE_RECURSE
  "libpdt_mpsim.a"
)
