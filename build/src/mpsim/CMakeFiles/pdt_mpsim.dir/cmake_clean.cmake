file(REMOVE_RECURSE
  "CMakeFiles/pdt_mpsim.dir/cost_model.cpp.o"
  "CMakeFiles/pdt_mpsim.dir/cost_model.cpp.o.d"
  "CMakeFiles/pdt_mpsim.dir/group.cpp.o"
  "CMakeFiles/pdt_mpsim.dir/group.cpp.o.d"
  "CMakeFiles/pdt_mpsim.dir/machine.cpp.o"
  "CMakeFiles/pdt_mpsim.dir/machine.cpp.o.d"
  "CMakeFiles/pdt_mpsim.dir/topology.cpp.o"
  "CMakeFiles/pdt_mpsim.dir/topology.cpp.o.d"
  "CMakeFiles/pdt_mpsim.dir/trace.cpp.o"
  "CMakeFiles/pdt_mpsim.dir/trace.cpp.o.d"
  "libpdt_mpsim.a"
  "libpdt_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
