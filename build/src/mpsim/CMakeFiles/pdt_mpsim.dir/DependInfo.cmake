
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpsim/cost_model.cpp" "src/mpsim/CMakeFiles/pdt_mpsim.dir/cost_model.cpp.o" "gcc" "src/mpsim/CMakeFiles/pdt_mpsim.dir/cost_model.cpp.o.d"
  "/root/repo/src/mpsim/group.cpp" "src/mpsim/CMakeFiles/pdt_mpsim.dir/group.cpp.o" "gcc" "src/mpsim/CMakeFiles/pdt_mpsim.dir/group.cpp.o.d"
  "/root/repo/src/mpsim/machine.cpp" "src/mpsim/CMakeFiles/pdt_mpsim.dir/machine.cpp.o" "gcc" "src/mpsim/CMakeFiles/pdt_mpsim.dir/machine.cpp.o.d"
  "/root/repo/src/mpsim/topology.cpp" "src/mpsim/CMakeFiles/pdt_mpsim.dir/topology.cpp.o" "gcc" "src/mpsim/CMakeFiles/pdt_mpsim.dir/topology.cpp.o.d"
  "/root/repo/src/mpsim/trace.cpp" "src/mpsim/CMakeFiles/pdt_mpsim.dir/trace.cpp.o" "gcc" "src/mpsim/CMakeFiles/pdt_mpsim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
