# Empty compiler generated dependencies file for pdt_mpsim.
# This may be replaced when dependencies are built.
