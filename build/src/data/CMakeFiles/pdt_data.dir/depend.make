# Empty dependencies file for pdt_data.
# This may be replaced when dependencies are built.
