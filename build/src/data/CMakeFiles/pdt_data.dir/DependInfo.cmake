
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/pdt_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/pdt_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/discretize.cpp" "src/data/CMakeFiles/pdt_data.dir/discretize.cpp.o" "gcc" "src/data/CMakeFiles/pdt_data.dir/discretize.cpp.o.d"
  "/root/repo/src/data/golf.cpp" "src/data/CMakeFiles/pdt_data.dir/golf.cpp.o" "gcc" "src/data/CMakeFiles/pdt_data.dir/golf.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/data/CMakeFiles/pdt_data.dir/io.cpp.o" "gcc" "src/data/CMakeFiles/pdt_data.dir/io.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/data/CMakeFiles/pdt_data.dir/partition.cpp.o" "gcc" "src/data/CMakeFiles/pdt_data.dir/partition.cpp.o.d"
  "/root/repo/src/data/quest.cpp" "src/data/CMakeFiles/pdt_data.dir/quest.cpp.o" "gcc" "src/data/CMakeFiles/pdt_data.dir/quest.cpp.o.d"
  "/root/repo/src/data/schema.cpp" "src/data/CMakeFiles/pdt_data.dir/schema.cpp.o" "gcc" "src/data/CMakeFiles/pdt_data.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
