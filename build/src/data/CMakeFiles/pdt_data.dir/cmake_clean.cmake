file(REMOVE_RECURSE
  "CMakeFiles/pdt_data.dir/dataset.cpp.o"
  "CMakeFiles/pdt_data.dir/dataset.cpp.o.d"
  "CMakeFiles/pdt_data.dir/discretize.cpp.o"
  "CMakeFiles/pdt_data.dir/discretize.cpp.o.d"
  "CMakeFiles/pdt_data.dir/golf.cpp.o"
  "CMakeFiles/pdt_data.dir/golf.cpp.o.d"
  "CMakeFiles/pdt_data.dir/io.cpp.o"
  "CMakeFiles/pdt_data.dir/io.cpp.o.d"
  "CMakeFiles/pdt_data.dir/partition.cpp.o"
  "CMakeFiles/pdt_data.dir/partition.cpp.o.d"
  "CMakeFiles/pdt_data.dir/quest.cpp.o"
  "CMakeFiles/pdt_data.dir/quest.cpp.o.d"
  "CMakeFiles/pdt_data.dir/schema.cpp.o"
  "CMakeFiles/pdt_data.dir/schema.cpp.o.d"
  "libpdt_data.a"
  "libpdt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
