file(REMOVE_RECURSE
  "libpdt_data.a"
)
