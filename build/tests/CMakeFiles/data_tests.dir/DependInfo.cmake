
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/dataset_test.cpp" "tests/CMakeFiles/data_tests.dir/data/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/data_tests.dir/data/dataset_test.cpp.o.d"
  "/root/repo/tests/data/discretize_test.cpp" "tests/CMakeFiles/data_tests.dir/data/discretize_test.cpp.o" "gcc" "tests/CMakeFiles/data_tests.dir/data/discretize_test.cpp.o.d"
  "/root/repo/tests/data/golf_test.cpp" "tests/CMakeFiles/data_tests.dir/data/golf_test.cpp.o" "gcc" "tests/CMakeFiles/data_tests.dir/data/golf_test.cpp.o.d"
  "/root/repo/tests/data/io_test.cpp" "tests/CMakeFiles/data_tests.dir/data/io_test.cpp.o" "gcc" "tests/CMakeFiles/data_tests.dir/data/io_test.cpp.o.d"
  "/root/repo/tests/data/partition_test.cpp" "tests/CMakeFiles/data_tests.dir/data/partition_test.cpp.o" "gcc" "tests/CMakeFiles/data_tests.dir/data/partition_test.cpp.o.d"
  "/root/repo/tests/data/quest_test.cpp" "tests/CMakeFiles/data_tests.dir/data/quest_test.cpp.o" "gcc" "tests/CMakeFiles/data_tests.dir/data/quest_test.cpp.o.d"
  "/root/repo/tests/data/rng_test.cpp" "tests/CMakeFiles/data_tests.dir/data/rng_test.cpp.o" "gcc" "tests/CMakeFiles/data_tests.dir/data/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alist/CMakeFiles/pdt_alist.dir/DependInfo.cmake"
  "/root/repo/build/src/dtree/CMakeFiles/pdt_dtree.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/pdt_mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
