# Empty dependencies file for dtree_tests.
# This may be replaced when dependencies are built.
