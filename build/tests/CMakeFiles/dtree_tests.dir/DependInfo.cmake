
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dtree/builder_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/builder_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/builder_test.cpp.o.d"
  "/root/repo/tests/dtree/criteria_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/criteria_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/criteria_test.cpp.o.d"
  "/root/repo/tests/dtree/histogram_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/histogram_test.cpp.o.d"
  "/root/repo/tests/dtree/metrics_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/metrics_test.cpp.o.d"
  "/root/repo/tests/dtree/prune_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/prune_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/prune_test.cpp.o.d"
  "/root/repo/tests/dtree/slots_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/slots_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/slots_test.cpp.o.d"
  "/root/repo/tests/dtree/split_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/split_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/split_test.cpp.o.d"
  "/root/repo/tests/dtree/tree_test.cpp" "tests/CMakeFiles/dtree_tests.dir/dtree/tree_test.cpp.o" "gcc" "tests/CMakeFiles/dtree_tests.dir/dtree/tree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alist/CMakeFiles/pdt_alist.dir/DependInfo.cmake"
  "/root/repo/build/src/dtree/CMakeFiles/pdt_dtree.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/pdt_mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
