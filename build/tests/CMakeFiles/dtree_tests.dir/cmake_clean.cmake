file(REMOVE_RECURSE
  "CMakeFiles/dtree_tests.dir/dtree/builder_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/builder_test.cpp.o.d"
  "CMakeFiles/dtree_tests.dir/dtree/criteria_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/criteria_test.cpp.o.d"
  "CMakeFiles/dtree_tests.dir/dtree/histogram_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/histogram_test.cpp.o.d"
  "CMakeFiles/dtree_tests.dir/dtree/metrics_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/metrics_test.cpp.o.d"
  "CMakeFiles/dtree_tests.dir/dtree/prune_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/prune_test.cpp.o.d"
  "CMakeFiles/dtree_tests.dir/dtree/slots_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/slots_test.cpp.o.d"
  "CMakeFiles/dtree_tests.dir/dtree/split_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/split_test.cpp.o.d"
  "CMakeFiles/dtree_tests.dir/dtree/tree_test.cpp.o"
  "CMakeFiles/dtree_tests.dir/dtree/tree_test.cpp.o.d"
  "dtree_tests"
  "dtree_tests.pdb"
  "dtree_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
