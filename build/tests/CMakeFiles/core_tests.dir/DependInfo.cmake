
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/cost_analysis_test.cpp" "tests/CMakeFiles/core_tests.dir/core/cost_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cost_analysis_test.cpp.o.d"
  "/root/repo/tests/core/equivalence_test.cpp" "tests/CMakeFiles/core_tests.dir/core/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/equivalence_test.cpp.o.d"
  "/root/repo/tests/core/exact_continuous_test.cpp" "tests/CMakeFiles/core_tests.dir/core/exact_continuous_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/exact_continuous_test.cpp.o.d"
  "/root/repo/tests/core/frontier_test.cpp" "tests/CMakeFiles/core_tests.dir/core/frontier_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/frontier_test.cpp.o.d"
  "/root/repo/tests/core/hybrid_test.cpp" "tests/CMakeFiles/core_tests.dir/core/hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hybrid_test.cpp.o.d"
  "/root/repo/tests/core/partitioned_test.cpp" "tests/CMakeFiles/core_tests.dir/core/partitioned_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/partitioned_test.cpp.o.d"
  "/root/repo/tests/core/robustness_test.cpp" "tests/CMakeFiles/core_tests.dir/core/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/robustness_test.cpp.o.d"
  "/root/repo/tests/core/sync_test.cpp" "tests/CMakeFiles/core_tests.dir/core/sync_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/sync_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alist/CMakeFiles/pdt_alist.dir/DependInfo.cmake"
  "/root/repo/build/src/dtree/CMakeFiles/pdt_dtree.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/pdt_mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
