file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/baselines_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/cost_analysis_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cost_analysis_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/equivalence_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/equivalence_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/exact_continuous_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/exact_continuous_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/frontier_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/frontier_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/hybrid_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/hybrid_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/partitioned_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/partitioned_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/robustness_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/robustness_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/sync_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/sync_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
