
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alist/attribute_list_test.cpp" "tests/CMakeFiles/alist_tests.dir/alist/attribute_list_test.cpp.o" "gcc" "tests/CMakeFiles/alist_tests.dir/alist/attribute_list_test.cpp.o.d"
  "/root/repo/tests/alist/parallel_test.cpp" "tests/CMakeFiles/alist_tests.dir/alist/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/alist_tests.dir/alist/parallel_test.cpp.o.d"
  "/root/repo/tests/alist/presorted_test.cpp" "tests/CMakeFiles/alist_tests.dir/alist/presorted_test.cpp.o" "gcc" "tests/CMakeFiles/alist_tests.dir/alist/presorted_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alist/CMakeFiles/pdt_alist.dir/DependInfo.cmake"
  "/root/repo/build/src/dtree/CMakeFiles/pdt_dtree.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pdt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/pdt_mpsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
