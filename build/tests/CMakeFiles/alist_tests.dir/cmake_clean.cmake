file(REMOVE_RECURSE
  "CMakeFiles/alist_tests.dir/alist/attribute_list_test.cpp.o"
  "CMakeFiles/alist_tests.dir/alist/attribute_list_test.cpp.o.d"
  "CMakeFiles/alist_tests.dir/alist/parallel_test.cpp.o"
  "CMakeFiles/alist_tests.dir/alist/parallel_test.cpp.o.d"
  "CMakeFiles/alist_tests.dir/alist/presorted_test.cpp.o"
  "CMakeFiles/alist_tests.dir/alist/presorted_test.cpp.o.d"
  "alist_tests"
  "alist_tests.pdb"
  "alist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
