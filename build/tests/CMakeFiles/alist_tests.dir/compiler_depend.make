# Empty compiler generated dependencies file for alist_tests.
# This may be replaced when dependencies are built.
