file(REMOVE_RECURSE
  "CMakeFiles/mpsim_tests.dir/mpsim/cost_model_test.cpp.o"
  "CMakeFiles/mpsim_tests.dir/mpsim/cost_model_test.cpp.o.d"
  "CMakeFiles/mpsim_tests.dir/mpsim/group_test.cpp.o"
  "CMakeFiles/mpsim_tests.dir/mpsim/group_test.cpp.o.d"
  "CMakeFiles/mpsim_tests.dir/mpsim/machine_test.cpp.o"
  "CMakeFiles/mpsim_tests.dir/mpsim/machine_test.cpp.o.d"
  "CMakeFiles/mpsim_tests.dir/mpsim/topology_test.cpp.o"
  "CMakeFiles/mpsim_tests.dir/mpsim/topology_test.cpp.o.d"
  "mpsim_tests"
  "mpsim_tests.pdb"
  "mpsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
