# Empty dependencies file for mpsim_tests.
# This may be replaced when dependencies are built.
