// `pdt-tree ckpt` — inspect and verify pdt-ckpt-v1 durable checkpoints.
//
// Points at either one epoch file or a checkpoint directory. Every file
// is validated through core::parse_ckpt — the same parser the resume
// path uses — so "pdt-tree ckpt says ok" and "a crash-restart will
// accept this epoch" are the same statement. The MANIFEST is shown for
// orientation but, like the loader, never trusted: the verdict comes
// from the epoch files themselves.
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/ckpt.hpp"
#include "tree/tree.hpp"

namespace pdt::tools {

namespace {

namespace fs = std::filesystem;

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

std::int64_t total_records(const core::RunSnapshot& snap) {
  std::int64_t total = 0;
  for (const core::CkptPart& p : snap.parts) {
    for (const core::NodeWork& nw : p.frontier) total += nw.total_records();
  }
  return total;
}

std::size_t frontier_nodes(const core::RunSnapshot& snap) {
  std::size_t nodes = 0;
  for (const core::CkptPart& p : snap.parts) nodes += p.frontier.size();
  return nodes;
}

/// One epoch file: validate and print a summary line. Returns true when
/// the file parses clean.
bool inspect_file(const fs::path& path, bool verbose, std::ostream& os) {
  std::string bytes;
  if (!read_file(path, &bytes)) {
    os << path.string() << ": unreadable\n";
    return false;
  }
  core::RunSnapshot snap;
  const std::string err = core::parse_ckpt(bytes, &snap);
  if (!err.empty()) {
    os << path.string() << ": INVALID (" << err << ")\n";
    return false;
  }
  os << path.string() << ": ok — epoch " << snap.epoch << ", "
     << snap.formulation << " P=" << snap.num_procs << ", " << bytes.size()
     << " bytes\n";
  os << "  tree    " << snap.tree_digest.substr(0, 12) << "...  ("
     << snap.tree_json.size() << " canonical bytes), " << snap.levels
     << " level(s) grown\n";
  os << "  work    " << snap.parts.size() << " partition(s), "
     << frontier_nodes(snap) << " frontier node(s), " << total_records(snap)
     << " owned record(s)";
  if (!snap.idle.empty()) os << ", " << snap.idle.size() << " idle group(s)";
  os << "\n";
  if (!verbose) return true;
  os << "  seed " << snap.seed << ", record_words " << snap.record_words
     << ", splits " << snap.partition_splits << ", rejoins " << snap.rejoins
     << ", moved " << snap.records_moved << "\n";
  os << "  cost model: t_s=" << snap.cost.t_s << " t_w=" << snap.cost.t_w
     << " t_c=" << snap.cost.t_c << " t_io=" << snap.cost.t_io
     << " t_timeout=" << snap.cost.t_timeout << "\n";
  os << "  fingerprint: " << snap.fingerprint << "\n";
  for (std::size_t q = 0; q < snap.parts.size(); ++q) {
    const core::CkptPart& p = snap.parts[q];
    std::int64_t recs = 0;
    for (const core::NodeWork& nw : p.frontier) recs += nw.total_records();
    os << "  part " << q << ": ranks [";
    for (std::size_t m = 0; m < p.ranks.size(); ++m) {
      if (m > 0) os << " ";
      os << p.ranks[m];
    }
    os << "], " << p.frontier.size() << " node(s), " << recs << " record(s)";
    if (p.acc_comm > 0.0) os << ", acc_comm " << p.acc_comm << " us";
    os << "\n";
  }
  return true;
}

/// Epoch number from a `ckpt-<digits>.pdt` filename, or -1.
int epoch_of(const fs::path& path) {
  const std::string name = path.filename().string();
  if (name.size() <= 9 || name.compare(0, 5, "ckpt-") != 0 ||
      name.compare(name.size() - 4, 4, ".pdt") != 0) {
    return -1;
  }
  const std::string digits = name.substr(5, name.size() - 9);
  if (digits.empty()) return -1;
  for (const char c : digits) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return -1;
  }
  return std::atoi(digits.c_str());
}

int inspect_dir(const fs::path& dir, std::ostream& os) {
  std::vector<fs::path> epochs;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (epoch_of(e.path()) >= 0) epochs.push_back(e.path());
  }
  if (ec) {
    os << dir.string() << ": cannot list: " << ec.message() << "\n";
    return kExitFail;
  }
  std::sort(epochs.begin(), epochs.end(),
            [](const fs::path& a, const fs::path& b) {
              return epoch_of(a) < epoch_of(b);
            });

  std::string manifest;
  if (read_file(dir / "MANIFEST", &manifest)) {
    os << "MANIFEST (advisory, never trusted by the loader):\n";
    std::istringstream ms(manifest);
    for (std::string line; std::getline(ms, line);) {
      os << "  " << line << "\n";
    }
  }
  if (epochs.empty()) {
    os << dir.string() << ": no ckpt-<epoch>.pdt files\n";
    return kExitFail;
  }

  int valid = 0;
  for (const fs::path& p : epochs) {
    if (inspect_file(p, /*verbose=*/false, os)) ++valid;
  }
  os << valid << "/" << epochs.size() << " epoch(s) valid\n";
  // Verify semantics: the directory passes only when every epoch file
  // it holds would be accepted by a resume.
  return valid == static_cast<int>(epochs.size()) ? kExitOk : kExitFail;
}

}  // namespace

int run_ckpt(const std::string& path, std::ostream& os) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) return inspect_dir(path, os);
  return inspect_file(path, /*verbose=*/true, os) ? kExitOk : kExitFail;
}

}  // namespace pdt::tools
