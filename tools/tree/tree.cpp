#include "tree/tree.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <utility>

#include "common/cli.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/metrics.hpp"

namespace pdt::tools {

namespace {

/// printf into an ostream — the tools render fixed-width tables and the
/// iostream manipulator soup obscures them.
void out(std::ostream& os, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  os << buf;
}

bool kind_from_name(const std::string& name, dtree::SplitTest::Kind* k) {
  using Kind = dtree::SplitTest::Kind;
  if (name == "leaf") *k = Kind::Leaf;
  else if (name == "threshold") *k = Kind::Threshold;
  else if (name == "ordered_slot") *k = Kind::OrderedSlot;
  else if (name == "subset") *k = Kind::Subset;
  else if (name == "multiway") *k = Kind::Multiway;
  else return false;
  return true;
}

std::string parse_node(const JsonValue& jn, std::size_t idx,
                       dtree::NodeSpec* spec) {
  const std::string at = "node " + std::to_string(idx) + ": ";
  if (!jn.is_object()) return at + "not an object";
  if (jn.get("id").as_int(-1) != static_cast<std::int64_t>(idx)) {
    return at + "id is not its array position";
  }
  spec->parent = static_cast<int>(jn.get("parent").as_int(-1));
  spec->first_child = static_cast<int>(jn.get("first_child").as_int(-1));
  spec->depth = static_cast<int>(jn.get("depth").as_int());
  spec->majority = static_cast<int>(jn.get("majority").as_int());
  const JsonValue& counts = jn.get("counts");
  if (!counts.is_array() || counts.size() == 0) {
    return at + "missing counts array";
  }
  for (const JsonValue& c : counts.array()) {
    if (!c.is_number() || c.as_int() < 0) return at + "bad class count";
    spec->counts.push_back(c.as_int());
  }
  if (!kind_from_name(jn.get("kind").as_string(), &spec->test.kind)) {
    return at + "unknown kind \"" + jn.get("kind").as_string() + "\"";
  }
  if (spec->test.is_leaf()) return {};

  spec->test.attr = static_cast<int>(jn.get("attr").as_int(-1));
  spec->test.num_children = static_cast<int>(jn.get("children").as_int());
  if (spec->test.attr < 0) return at + "split without an attr";
  switch (spec->test.kind) {
    case dtree::SplitTest::Kind::Threshold:
      if (!jn.get("threshold").is_number()) {
        return at + "threshold split without a threshold";
      }
      spec->test.threshold = jn.get("threshold").as_double();
      spec->test.slot_threshold = static_cast<int>(jn.get("slot").as_int(-1));
      break;
    case dtree::SplitTest::Kind::OrderedSlot:
      spec->test.slot_threshold = static_cast<int>(jn.get("slot").as_int(-1));
      if (spec->test.slot_threshold < 0) {
        return at + "ordered_slot split without a slot";
      }
      break;
    case dtree::SplitTest::Kind::Subset: {
      const JsonValue& in_left = jn.get("in_left");
      if (!in_left.is_array() || in_left.size() == 0) {
        return at + "subset split without in_left";
      }
      for (const JsonValue& f : in_left.array()) {
        spec->test.in_left.push_back(f.as_int() != 0 ? 1 : 0);
      }
      break;
    }
    case dtree::SplitTest::Kind::Multiway:
    case dtree::SplitTest::Kind::Leaf:
      break;
  }
  return {};
}

std::string describe_test(const dtree::SplitTest& t) {
  char buf[128];
  switch (t.kind) {
    case dtree::SplitTest::Kind::Leaf:
      return "leaf";
    case dtree::SplitTest::Kind::Threshold:
      std::snprintf(buf, sizeof buf, "attr %d <= %.17g (slot %d)", t.attr,
                    t.threshold, t.slot_threshold);
      return buf;
    case dtree::SplitTest::Kind::OrderedSlot:
      std::snprintf(buf, sizeof buf, "attr %d slot <= %d", t.attr,
                    t.slot_threshold);
      return buf;
    case dtree::SplitTest::Kind::Subset: {
      std::string s = "attr " + std::to_string(t.attr) + " in {";
      bool first = true;
      for (std::size_t v = 0; v < t.in_left.size(); ++v) {
        if (t.in_left[v] == 0) continue;
        if (!first) s += ",";
        s += std::to_string(v);
        first = false;
      }
      return s + "}";
    }
    case dtree::SplitTest::Kind::Multiway:
      std::snprintf(buf, sizeof buf, "attr %d multiway x%d", t.attr,
                    t.num_children);
      return buf;
  }
  return "?";
}

bool specs_equal(const dtree::NodeSpec& a, const dtree::NodeSpec& b) {
  return a.parent == b.parent && a.first_child == b.first_child &&
         a.depth == b.depth && a.majority == b.majority &&
         a.counts == b.counts && a.test.kind == b.test.kind &&
         a.test.attr == b.test.attr && a.test.threshold == b.test.threshold &&
         a.test.slot_threshold == b.test.slot_threshold &&
         a.test.in_left == b.test.in_left &&
         a.test.num_children == b.test.num_children;
}

void warn_digest(const ModelDoc& m, std::ostream& os) {
  if (m.digest_match()) return;
  out(os,
      "WARNING: %s: recorded digest %.12s... does not match the tree "
      "(recomputed %.12s... wins)\n",
      m.name.c_str(), m.recorded_digest.c_str(), m.computed_digest.c_str());
}

/// Hold-out sample described by the document's meta (Null dataset columns
/// are impossible — quest_generate always yields the 9-attribute schema).
bool regen_eval_dataset(const ModelDoc& m, data::Dataset* out_ds,
                        std::string* why) {
  const JsonValue& wl = m.meta.get("workload");
  const JsonValue& ev = m.meta.get("eval");
  if (!ev.is_object() || ev.get("rows").as_int() <= 0) {
    *why = "no held-out evaluation recorded in meta";
    return false;
  }
  if (wl.get("generator").as_string() != "quest") {
    *why = "unknown workload generator \"" +
           wl.get("generator").as_string() + "\"";
    return false;
  }
  data::Dataset ds = data::quest_generate(
      static_cast<std::size_t>(ev.get("rows").as_int()),
      {.function = static_cast<int>(wl.get("function").as_int(2)),
       .seed = static_cast<std::uint64_t>(ev.get("seed").as_int())});
  if (wl.get("paper_bins").as_bool()) {
    ds = data::discretize_uniform(ds, data::quest_paper_bins());
  }
  *out_ds = std::move(ds);
  return true;
}

}  // namespace

AuditMargin audit_margin(const ModelDoc& m, int node) {
  AuditMargin r;
  for (const JsonValue& e : m.audit.array()) {
    if (e.get("node").as_int(-1) != node) continue;
    r.found = true;
    r.gain = e.get("gain").as_double();
    r.runner_up_gain = e.get("runner_up_gain").as_double();
    r.runner_up_attr = static_cast<int>(e.get("runner_up_attr").as_int(-1));
    break;
  }
  return r;
}

std::string parse_model(const JsonValue& root, ModelDoc* out) {
  if (root.get("schema").as_string() != "pdt-model-v1") {
    return "not a pdt-model-v1 document (schema \"" +
           root.get("schema").as_string() + "\")";
  }
  const JsonValue& nodes = root.get("nodes");
  if (!nodes.is_array() || nodes.size() == 0) {
    return "missing nodes array";
  }
  out->nodes.clear();
  out->nodes.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    dtree::NodeSpec spec;
    if (std::string err = parse_node(nodes.at(i), i, &spec); !err.empty()) {
      return err;
    }
    out->nodes.push_back(std::move(spec));
  }
  if (std::string err = dtree::tree_from_nodes(out->nodes, &out->tree);
      !err.empty()) {
    return err;
  }
  out->recorded_digest = root.get("digest").as_string();
  out->computed_digest = dtree::model_digest(out->tree);
  out->meta = root.get("meta");
  out->audit = root.get("audit");
  return {};
}

int run_inspect(const ModelDoc& m, std::ostream& os) {
  warn_digest(m, os);
  const JsonValue& wl = m.meta.get("workload");
  out(os, "model    %s\n", m.name.c_str());
  out(os, "digest   %s\n", m.computed_digest.c_str());
  out(os, "grown by %s/%s (%s, P=%lld) on quest f%lld seed %lld, N=%lld%s\n",
      m.meta.get("harness").as_string().c_str(),
      m.meta.get("tag").as_string().c_str(),
      m.meta.get("formulation").as_string().c_str(),
      static_cast<long long>(m.meta.get("procs").as_int(1)),
      static_cast<long long>(wl.get("function").as_int()),
      static_cast<long long>(wl.get("seed").as_int()),
      static_cast<long long>(wl.get("rows").as_int()),
      wl.get("paper_bins").as_bool() ? ", paper bins" : "");

  const int n = m.tree.num_nodes();
  out(os, "shape    %d nodes, %d leaves, depth %d\n", n, m.tree.num_leaves(),
      m.tree.depth());

  // Per-level breakdown — the frontier profile the parallel formulations
  // schedule over.
  std::vector<int> at_level;
  std::vector<int> leaves_at;
  for (int id = 0; id < n; ++id) {
    const dtree::Node& nd = m.tree.node(id);
    if (nd.depth >= static_cast<int>(at_level.size())) {
      at_level.resize(static_cast<std::size_t>(nd.depth) + 1, 0);
      leaves_at.resize(static_cast<std::size_t>(nd.depth) + 1, 0);
    }
    ++at_level[static_cast<std::size_t>(nd.depth)];
    if (nd.is_leaf()) ++leaves_at[static_cast<std::size_t>(nd.depth)];
  }
  out(os, "\n%6s %8s %8s %8s\n", "level", "nodes", "leaves", "splits");
  for (std::size_t d = 0; d < at_level.size(); ++d) {
    out(os, "%6zu %8d %8d %8d\n", d, at_level[d], leaves_at[d],
        at_level[d] - leaves_at[d]);
  }

  // Leaf purity: fraction of a leaf's records in its majority class.
  std::vector<int> purity_bucket(10, 0);
  std::int64_t leaf_records = 0;
  std::int64_t pure_records = 0;
  for (int id = 0; id < n; ++id) {
    const dtree::Node& nd = m.tree.node(id);
    if (!nd.is_leaf()) continue;
    const std::int64_t total = nd.num_records();
    if (total == 0) continue;  // Hunt Case-3 leaf: no records routed
    const std::int64_t maj =
        nd.class_counts[static_cast<std::size_t>(nd.majority)];
    leaf_records += total;
    pure_records += maj;
    const double purity =
        static_cast<double>(maj) / static_cast<double>(total);
    const int b = std::min(9, static_cast<int>(purity * 10.0));
    ++purity_bucket[static_cast<std::size_t>(b)];
  }
  out(os, "\nleaf purity (training records): %.4f overall\n",
      leaf_records == 0 ? 0.0
                        : static_cast<double>(pure_records) /
                              static_cast<double>(leaf_records));
  for (std::size_t b = 0; b < purity_bucket.size(); ++b) {
    if (purity_bucket[b] == 0) continue;
    out(os, "  [%3.0f%%,%3.0f%%) %6d leaves\n", 10.0 * b, 10.0 * (b + 1),
        purity_bucket[b]);
  }

  // Audit: how contested were the decisions?
  if (m.audit.is_array() && m.audit.size() > 0) {
    int tight_node = -1;
    double tight_margin = 0.0;
    int contested = 0;
    for (const JsonValue& e : m.audit.array()) {
      if (e.get("runner_up_attr").as_int(-1) < 0) continue;
      ++contested;
      const double margin =
          e.get("gain").as_double() - e.get("runner_up_gain").as_double();
      if (tight_node < 0 || margin < tight_margin) {
        tight_margin = margin;
        tight_node = static_cast<int>(e.get("node").as_int());
      }
    }
    out(os, "\naudit    %zu decisions, %d contested by a second attribute\n",
        m.audit.size(), contested);
    if (tight_node >= 0) {
      out(os, "         tightest margin %.3g at node %d (%s)\n", tight_margin,
          tight_node, describe_test(m.tree.node(tight_node).test).c_str());
    }
  } else {
    out(os, "\naudit    none recorded (run with split audit enabled)\n");
  }
  return kExitOk;
}

int run_diff(const ModelDoc& a, const ModelDoc& b, std::ostream& os) {
  warn_digest(a, os);
  warn_digest(b, os);
  if (a.computed_digest == b.computed_digest) {
    out(os, "identical: %d nodes, digest %s\n", a.tree.num_nodes(),
        a.computed_digest.c_str());
    return kExitOk;
  }
  out(os, "digest %s  %s\n", a.computed_digest.c_str(), a.name.c_str());
  out(os, "digest %s  %s\n", b.computed_digest.c_str(), b.name.c_str());

  const std::size_t common = std::min(a.nodes.size(), b.nodes.size());
  std::size_t first = common;
  for (std::size_t id = 0; id < common; ++id) {
    if (!specs_equal(a.nodes[id], b.nodes[id])) {
      first = id;
      break;
    }
  }
  if (first == common) {
    out(os,
        "first %zu canonical nodes agree; sizes differ (%zu vs %zu nodes)\n",
        common, a.nodes.size(), b.nodes.size());
    return kExitFail;
  }

  const dtree::NodeSpec& na = a.nodes[first];
  const dtree::NodeSpec& nb = b.nodes[first];
  out(os, "first divergent node: canonical id %zu (level %d)\n", first,
      na.depth);
  for (const auto& [doc, spec] : {std::pair<const ModelDoc&,
                                            const dtree::NodeSpec&>{a, na},
                                  {b, nb}}) {
    out(os, "  %-40s %s", describe_test(spec.test).c_str(),
        doc.name.c_str());
    const AuditMargin am = audit_margin(doc, static_cast<int>(first));
    if (am.found && am.runner_up_attr >= 0) {
      out(os, "  (gain %.6g, margin %.3g over attr %d)",
          am.gain, am.gain - am.runner_up_gain, am.runner_up_attr);
    }
    out(os, "\n");
  }
  return kExitFail;
}

int run_eval(const ModelDoc& m, std::ostream& os) {
  warn_digest(m, os);
  data::Dataset ds;
  std::string why;
  if (!regen_eval_dataset(m, &ds, &why)) {
    out(os, "pdt-tree: %s: cannot evaluate: %s\n", m.name.c_str(),
        why.c_str());
    return kExitFail;
  }
  const dtree::Evaluation ev = dtree::evaluate(m.tree, ds);
  out(os, "held-out: %zu rows (quest seed %lld)\n", ds.num_rows(),
      static_cast<long long>(m.meta.get("eval").get("seed").as_int()));
  out(os, "accuracy: %.6f (%lld / %lld correct)\n", ev.accuracy(),
      static_cast<long long>(ev.correct),
      static_cast<long long>(ev.total));

  out(os, "\nconfusion (rows = actual, cols = predicted):\n%10s", "");
  for (int c = 0; c < ev.num_classes; ++c) out(os, " %8d", c);
  out(os, "\n");
  for (int r = 0; r < ev.num_classes; ++r) {
    out(os, "%10d", r);
    for (int c = 0; c < ev.num_classes; ++c) {
      out(os, " %8lld",
          static_cast<long long>(
              ev.confusion[static_cast<std::size_t>(r * ev.num_classes + c)]));
    }
    out(os, "\n");
  }

  // Per-leaf hit counts over the held-out sample: which parts of the
  // tree actually carry the prediction load.
  std::vector<std::int64_t> hits(static_cast<std::size_t>(m.tree.num_nodes()),
                                 0);
  for (std::size_t row = 0; row < ds.num_rows(); ++row) {
    int id = m.tree.root();
    while (!m.tree.node(id).is_leaf()) {
      id = m.tree.node(id).first_child + m.tree.route(id, ds, row);
    }
    ++hits[static_cast<std::size_t>(id)];
  }
  std::vector<std::pair<std::int64_t, int>> hot;
  int leaves_hit = 0;
  for (int id = 0; id < m.tree.num_nodes(); ++id) {
    if (!m.tree.node(id).is_leaf()) continue;
    if (hits[static_cast<std::size_t>(id)] > 0) ++leaves_hit;
    hot.emplace_back(hits[static_cast<std::size_t>(id)], id);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& x, const auto& y) {
    return x.first != y.first ? x.first > y.first : x.second < y.second;
  });
  out(os, "\nleaf coverage: %d / %d leaves hit\n", leaves_hit,
      m.tree.num_leaves());
  out(os, "%8s %6s %6s %6s\n", "leaf", "level", "class", "hits");
  for (std::size_t i = 0; i < hot.size() && i < 5; ++i) {
    const dtree::Node& nd = m.tree.node(hot[i].second);
    out(os, "%8d %6d %6d %6lld\n", hot[i].second, nd.depth, nd.majority,
        static_cast<long long>(hot[i].first));
  }

  const JsonValue& recorded = m.meta.get("eval").get("accuracy");
  if (recorded.is_number() && recorded.as_double() != ev.accuracy()) {
    out(os,
        "FAIL: recorded accuracy %.17g does not reproduce (measured "
        "%.17g)\n",
        recorded.as_double(), ev.accuracy());
    return kExitFail;
  }
  if (recorded.is_number()) {
    out(os, "recorded accuracy reproduced exactly\n");
  }
  return kExitOk;
}

}  // namespace pdt::tools
