// pdt-tree — inspect, compare, and re-evaluate pdt-model-v1 classifiers.
//
//   pdt-tree inspect <model.json>
//       Rebuild the tree, recompute its digest, print shape / per-level /
//       leaf-purity tables and the split-audit summary.
//
//   pdt-tree diff <a.json> <b.json>
//       Exit 0 iff both documents reconstruct byte-identical canonical
//       trees; otherwise print the first divergent canonical node (with
//       each side's audited decision margin) and exit 1. This is the CI
//       model-identity gate: serial and all three parallel formulations
//       must serialize the same digest at every P.
//
//   pdt-tree eval <model.json>
//       Regenerate the recorded held-out Quest sample, re-measure
//       accuracy + confusion matrix + per-leaf hits; exit 1 when the
//       recorded accuracy does not reproduce.
//
// Every command validates the document by replaying Tree::expand() over
// the canonical node array; a recorded digest that does not match the
// rebuilt tree is flagged (the recomputed digest wins).
//
// Exit codes follow the suite convention in common/cli.hpp.
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "tree/tree.hpp"

namespace {

constexpr pdt::tools::CliSpec kSpec = {
    "pdt-tree",
    "usage: pdt-tree inspect <model.json>\n"
    "       pdt-tree diff <a.json> <b.json>\n"
    "       pdt-tree eval <model.json>\n"
    "       pdt-tree ckpt <ckpt-file-or-dir>\n"
    "\n"
    "Inspect pdt-model-v1 documents written by the bench harnesses\n"
    "(<harness>.<tag>.model.json). The tree is rebuilt from the\n"
    "canonical node array and its digest recomputed — a document is\n"
    "never taken at its word.\n"
    "\n"
    "  inspect   shape, per-level and leaf-purity tables, audit summary\n"
    "  diff      exit 1 + first divergent canonical node unless the two\n"
    "            trees are byte-identical in canonical form\n"
    "  eval      regenerate the held-out Quest sample and re-measure\n"
    "            accuracy; exit 1 unless it reproduces the recorded value\n"
    "  ckpt      validate pdt-ckpt-v1 durable checkpoints (one epoch\n"
    "            file, or a directory of them); exit 1 unless every\n"
    "            epoch would be accepted by a crash-restart resume\n"
    "  -h, --help    show this help\n"
    "  --version     print the tool-suite version\n",
};

int load_model(const std::string& path, pdt::tools::ModelDoc* out) {
  pdt::tools::JsonValue root;
  if (!pdt::tools::load_json_file(kSpec, path, &root)) {
    return pdt::tools::kExitUsage;
  }
  out->name = path;
  if (const std::string err = pdt::tools::parse_model(root, out);
      !err.empty()) {
    std::fprintf(stderr, "pdt-tree: %s: %s\n", path.c_str(), err.c_str());
    return pdt::tools::kExitFail;
  }
  return pdt::tools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdt::tools;
  std::string command;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int code = kExitOk;
    if (standard_flag(kSpec, arg, &code)) return code;
    if (command.empty()) {
      command = arg;
    } else {
      files.emplace_back(arg);
    }
  }

  if (command == "inspect" || command == "eval") {
    if (files.size() != 1) return usage(kSpec);
    ModelDoc m;
    if (const int code = load_model(files[0], &m); code != kExitOk) {
      return code;
    }
    return command == "inspect" ? run_inspect(m, std::cout)
                                : run_eval(m, std::cout);
  }
  if (command == "ckpt") {
    if (files.size() != 1) return usage(kSpec);
    return run_ckpt(files[0], std::cout);
  }
  if (command == "diff") {
    if (files.size() != 2) return usage(kSpec);
    ModelDoc a;
    ModelDoc b;
    if (const int code = load_model(files[0], &a); code != kExitOk) {
      return code;
    }
    if (const int code = load_model(files[1], &b); code != kExitOk) {
      return code;
    }
    return run_diff(a, b, std::cout);
  }
  return usage(kSpec);
}
