// pdt-tree — offline inspector for pdt-model-v1 documents.
//
// Unlike the other tools, pdt-tree deliberately links the simulator's
// dtree and data libraries: its whole point is to *reconstruct* the
// serialized classifier (replaying Tree::expand() over the canonical
// node array, validating every derived field), recompute the content
// digest from the rebuilt tree, and re-run the held-out evaluation from
// the recorded provenance — none of which a pure-JSON reader could vouch
// for. A document that merely claims a digest is never trusted: the
// recomputed value wins, and a mismatch is flagged on every command.
//
//   inspect  shape/purity/audit summary of one model
//   diff     first divergent canonical node between two models (exit 1)
//   eval     regenerate the held-out Quest sample, re-measure accuracy,
//            exit 1 when it does not reproduce the recorded value
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json_value.hpp"
#include "dtree/serialize.hpp"
#include "dtree/tree.hpp"

namespace pdt::tools {

/// A fully validated pdt-model-v1 document: the parsed node specs, the
/// tree rebuilt from them, and both digests (recorded vs. recomputed).
struct ModelDoc {
  std::string name;  ///< input path, for messages
  dtree::Tree tree;
  std::vector<dtree::NodeSpec> nodes;
  std::string recorded_digest;
  std::string computed_digest;
  JsonValue meta;   ///< the document's "meta" object (Null when absent)
  JsonValue audit;  ///< the document's "audit" array (Null when absent)

  [[nodiscard]] bool digest_match() const {
    return recorded_digest == computed_digest;
  }
};

/// One audited decision margin, looked up by canonical node id.
struct AuditMargin {
  bool found = false;
  double gain = 0.0;
  double runner_up_gain = 0.0;
  int runner_up_attr = -1;
};
[[nodiscard]] AuditMargin audit_margin(const ModelDoc& m, int node);

/// Parse + validate `root` (already JSON-parsed) into `*out`. Returns ""
/// on success, else a one-line description of the first inconsistency
/// (unknown schema, malformed node, replay validation failure).
[[nodiscard]] std::string parse_model(const JsonValue& root, ModelDoc* out);

/// `pdt-tree inspect`: provenance, shape, per-level node/leaf table,
/// leaf-purity histogram, audit summary. Always kExitOk (informational),
/// but a recorded/recomputed digest mismatch is called out loudly.
int run_inspect(const ModelDoc& m, std::ostream& os);

/// `pdt-tree diff`: kExitOk when the recomputed digests agree (the trees
/// are byte-identical in canonical form), else prints the first divergent
/// canonical node — with each side's test and its audited decision margin
/// — and returns kExitFail.
int run_diff(const ModelDoc& a, const ModelDoc& b, std::ostream& os);

/// `pdt-tree eval`: regenerate the held-out sample from the recorded
/// provenance (Quest generator + optional paper binning), re-measure
/// accuracy and the confusion matrix, tally per-leaf hit counts. Returns
/// kExitFail when the document recorded a different accuracy (or the
/// provenance cannot be regenerated), else kExitOk.
int run_eval(const ModelDoc& m, std::ostream& os);

/// `pdt-tree ckpt`: inspect/verify pdt-ckpt-v1 durable checkpoints.
/// `path` is one epoch file (detailed dump) or a checkpoint directory
/// (every epoch validated through core::parse_ckpt — the resume path's
/// own parser — plus the advisory MANIFEST). Returns kExitOk only when
/// everything inspected would be accepted by a crash-restart resume.
int run_ckpt(const std::string& path, std::ostream& os);

}  // namespace pdt::tools
