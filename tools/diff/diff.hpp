// Performance-regression comparison of pdt-bench-v1 report files.
//
// pdt-diff works on the speedup_series sections every figure harness
// emits: each (harness, workload, formulation, procs) tuple carries the
// run's virtual time, speedup, and efficiency. Because the simulator's
// virtual clock is a pure function of the dataset seed and PDT_SCALE,
// these numbers are deterministic, so a committed baseline can gate CI:
// any relative drift past --tol on any tuple is a regression (or an
// unannounced improvement — either way, the baseline must be regenerated
// deliberately).
//
// The baseline is its own small schema ("pdt-diff-baseline-v1") extracted
// from one or more bench envelopes, so the committed file stays reviewable
// (a few lines per tuple instead of full reports).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/json_value.hpp"
#include "report/report.hpp"

namespace pdt::tools {

/// One comparable measurement: a (harness, workload, formulation, procs)
/// tuple and its deterministic results.
struct DiffEntry {
  std::string harness;
  std::string workload;
  std::string formulation;
  std::int64_t procs = 0;
  double time_us = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
};

/// Collect every speedup_series point of every input envelope. When
/// `procs_filter` is non-empty, only those processor counts are kept.
/// Bare (non-envelope) inputs contribute nothing.
[[nodiscard]] std::vector<DiffEntry> extract_entries(
    const std::vector<ReportInput>& inputs,
    const std::vector<std::int64_t>& procs_filter);

/// Parse a pdt-diff-baseline-v1 document. Returns false on schema
/// mismatch or malformed entries (error gets a message).
[[nodiscard]] bool parse_baseline(const JsonValue& root,
                                  std::vector<DiffEntry>* out,
                                  std::string* error);

/// Write entries as a pdt-diff-baseline-v1 document (deterministic,
/// input-ordered).
void write_baseline(const std::vector<DiffEntry>& entries, std::ostream& os);

struct DiffOptions {
  /// Maximum tolerated relative drift per field, e.g. 0.02 for 2%. The
  /// default is effectively "bit-stable modulo printing".
  double tol = 1e-9;
};

/// Compare current entries against a baseline and write a line per tuple.
/// Returns the number of failures: tuples drifting past tol on time_us /
/// speedup / efficiency, plus baseline tuples missing from `current`.
[[nodiscard]] int run_diff(const std::vector<DiffEntry>& baseline,
                           const std::vector<DiffEntry>& current,
                           const DiffOptions& opt, std::ostream& os);

// ------------------------------------------------------------ host mode --
//
// Unlike the virtual clock, host wall time is noisy: the same binary on
// the same machine jitters run to run, and different machines differ by
// integer factors. The host gate therefore works on *repeats*: each
// (harness, tag, formulation, procs) tuple is measured k times (one
// bench envelope per repeat), collapsed to median + MAD (median absolute
// deviation — a robust spread immune to one slow outlier run), and the
// tolerance band scales with the measured noise:
//
//   band = max(tol * base_median, mad_k * 1.4826 * (base_mad + cur_mad))
//
// 1.4826 * MAD estimates one standard deviation for normal noise, so
// mad_k is roughly "how many sigmas of combined jitter to forgive"; the
// tol term floors the band so a near-zero-MAD baseline cannot turn the
// gate into a bit-exactness check on wall time.

/// One host-time tuple with its repeats collapsed to median + MAD (both
/// in nanoseconds; k = number of repeats observed).
struct HostEntry {
  std::string harness;
  std::string tag;
  std::string formulation;
  std::int64_t procs = 0;
  std::int64_t k = 0;
  double median_ns = 0.0;
  double mad_ns = 0.0;
};

/// Collect the host total_ns of every instrumented_run section that has
/// one, across all input envelopes (each input = one repeat), and
/// collapse per tuple to median + MAD. Tuples keep first-appearance
/// order; sections without a "host" member contribute nothing.
[[nodiscard]] std::vector<HostEntry> extract_host_entries(
    const std::vector<ReportInput>& inputs);

/// Parse a pdt-host-baseline-v1 document.
[[nodiscard]] bool parse_host_baseline(const JsonValue& root,
                                       std::vector<HostEntry>* out,
                                       std::string* error);

/// Write entries as a pdt-host-baseline-v1 document (deterministic,
/// input-ordered).
void write_host_baseline(const std::vector<HostEntry>& entries,
                         std::ostream& os);

struct HostDiffOptions {
  /// Relative floor of the tolerance band. Host times are not portable
  /// across machines, so a committed baseline gates with a generous
  /// default that still catches order-of-magnitude regressions.
  double tol = 0.5;
  /// MAD multiplier: how many ~sigmas of combined baseline+current
  /// jitter to forgive on top of the floor.
  double mad_k = 5.0;
};

/// Compare current host medians against a baseline; a line per tuple.
/// Returns the number of failures (drift past the noise band, or
/// baseline tuples missing from `current`).
[[nodiscard]] int run_host_diff(const std::vector<HostEntry>& baseline,
                                const std::vector<HostEntry>& current,
                                const HostDiffOptions& opt, std::ostream& os);

}  // namespace pdt::tools
