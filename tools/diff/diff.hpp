// Performance-regression comparison of pdt-bench-v1 report files.
//
// pdt-diff works on the speedup_series sections every figure harness
// emits: each (harness, workload, formulation, procs) tuple carries the
// run's virtual time, speedup, and efficiency. Because the simulator's
// virtual clock is a pure function of the dataset seed and PDT_SCALE,
// these numbers are deterministic, so a committed baseline can gate CI:
// any relative drift past --tol on any tuple is a regression (or an
// unannounced improvement — either way, the baseline must be regenerated
// deliberately).
//
// The baseline is its own small schema ("pdt-diff-baseline-v1") extracted
// from one or more bench envelopes, so the committed file stays reviewable
// (a few lines per tuple instead of full reports).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/json_value.hpp"
#include "report/report.hpp"

namespace pdt::tools {

/// One comparable measurement: a (harness, workload, formulation, procs)
/// tuple and its deterministic results.
struct DiffEntry {
  std::string harness;
  std::string workload;
  std::string formulation;
  std::int64_t procs = 0;
  double time_us = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
};

/// Collect every speedup_series point of every input envelope. When
/// `procs_filter` is non-empty, only those processor counts are kept.
/// Bare (non-envelope) inputs contribute nothing.
[[nodiscard]] std::vector<DiffEntry> extract_entries(
    const std::vector<ReportInput>& inputs,
    const std::vector<std::int64_t>& procs_filter);

/// Parse a pdt-diff-baseline-v1 document. Returns false on schema
/// mismatch or malformed entries (error gets a message).
[[nodiscard]] bool parse_baseline(const JsonValue& root,
                                  std::vector<DiffEntry>* out,
                                  std::string* error);

/// Write entries as a pdt-diff-baseline-v1 document (deterministic,
/// input-ordered).
void write_baseline(const std::vector<DiffEntry>& entries, std::ostream& os);

struct DiffOptions {
  /// Maximum tolerated relative drift per field, e.g. 0.02 for 2%. The
  /// default is effectively "bit-stable modulo printing".
  double tol = 1e-9;
};

/// Compare current entries against a baseline and write a line per tuple.
/// Returns the number of failures: tuples drifting past tol on time_us /
/// speedup / efficiency, plus baseline tuples missing from `current`.
[[nodiscard]] int run_diff(const std::vector<DiffEntry>& baseline,
                           const std::vector<DiffEntry>& current,
                           const DiffOptions& opt, std::ostream& os);

}  // namespace pdt::tools
