#include "diff/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pdt::tools {

namespace {

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return std::string(buf);
}

bool same_tuple(const DiffEntry& a, const DiffEntry& b) {
  return a.harness == b.harness && a.workload == b.workload &&
         a.formulation == b.formulation && a.procs == b.procs;
}

/// Relative drift of `cur` against `base` (0 when both are 0).
double drift(double base, double cur) {
  if (base == 0.0) return cur == 0.0 ? 0.0 : HUGE_VAL;
  return (cur - base) / base;
}

}  // namespace

std::vector<DiffEntry> extract_entries(
    const std::vector<ReportInput>& inputs,
    const std::vector<std::int64_t>& procs_filter) {
  std::vector<DiffEntry> out;
  for (const ReportInput& in : inputs) {
    if (in.root.get("schema").as_string() != "pdt-bench-v1") continue;
    const std::string& harness = in.root.get("harness").as_string();
    for (const JsonValue& sec : in.root.get("sections").array()) {
      if (sec.get("type").as_string() != "speedup_series") continue;
      for (const JsonValue& pt : sec.get("points").array()) {
        const std::int64_t p = pt.get("procs").as_int();
        if (!procs_filter.empty() &&
            std::find(procs_filter.begin(), procs_filter.end(), p) ==
                procs_filter.end()) {
          continue;
        }
        DiffEntry e;
        e.harness = harness;
        e.workload = sec.get("workload").as_string();
        e.formulation = sec.get("formulation").as_string();
        e.procs = p;
        e.time_us = pt.get("time_us").as_double();
        e.speedup = pt.get("speedup").as_double();
        e.efficiency = pt.get("efficiency").as_double();
        out.push_back(std::move(e));
      }
    }
  }
  return out;
}

bool parse_baseline(const JsonValue& root, std::vector<DiffEntry>* out,
                    std::string* error) {
  if (root.get("schema").as_string() != "pdt-diff-baseline-v1") {
    if (error != nullptr) {
      *error = "schema is not pdt-diff-baseline-v1 (got \"" +
               root.get("schema").as_string() + "\")";
    }
    return false;
  }
  out->clear();
  for (const JsonValue& e : root.get("entries").array()) {
    DiffEntry d;
    d.harness = e.get("harness").as_string();
    d.workload = e.get("workload").as_string();
    d.formulation = e.get("formulation").as_string();
    d.procs = e.get("procs").as_int();
    d.time_us = e.get("time_us").as_double();
    d.speedup = e.get("speedup").as_double();
    d.efficiency = e.get("efficiency").as_double();
    if (d.harness.empty() || d.procs <= 0) {
      if (error != nullptr) {
        *error = "baseline entry missing harness or procs";
      }
      return false;
    }
    out->push_back(std::move(d));
  }
  return true;
}

void write_baseline(const std::vector<DiffEntry>& entries, std::ostream& os) {
  os << "{\n  \"schema\": \"pdt-diff-baseline-v1\",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const DiffEntry& e = entries[i];
    os << (i == 0 ? "" : ",") << "\n    {\"harness\": \""
       << json_escaped(e.harness) << "\", \"workload\": \"" << json_escaped(e.workload)
       << "\", \"formulation\": \"" << json_escaped(e.formulation)
       << "\", \"procs\": " << e.procs
       << ", \"time_us\": " << json_double_exact(e.time_us)
       << ", \"speedup\": " << json_double_exact(e.speedup)
       << ", \"efficiency\": " << json_double_exact(e.efficiency) << "}";
  }
  os << "\n  ]\n}\n";
}

int run_diff(const std::vector<DiffEntry>& baseline,
             const std::vector<DiffEntry>& current, const DiffOptions& opt,
             std::ostream& os) {
  int failures = 0;
  os << "comparing " << baseline.size() << " baseline tuples (tol "
     << fmt(100.0 * opt.tol, 4) << "%)\n";
  for (const DiffEntry& b : baseline) {
    const DiffEntry* cur = nullptr;
    for (const DiffEntry& c : current) {
      if (same_tuple(b, c)) {
        cur = &c;
        break;
      }
    }
    const std::string name = b.harness + " " + b.workload + " " +
                             b.formulation + " P=" + std::to_string(b.procs);
    if (cur == nullptr) {
      ++failures;
      os << "MISSING " << name << " — tuple absent from current results\n";
      continue;
    }
    const double d_time = drift(b.time_us, cur->time_us);
    const double d_speedup = drift(b.speedup, cur->speedup);
    const double d_eff = drift(b.efficiency, cur->efficiency);
    const double worst = std::max(
        {std::fabs(d_time), std::fabs(d_speedup), std::fabs(d_eff)});
    const bool fail = worst > opt.tol;
    if (fail) ++failures;
    os << (fail ? "FAIL    " : "ok      ") << name << " — time "
       << fmt(b.time_us, 1) << " -> " << fmt(cur->time_us, 1) << " us ("
       << (d_time >= 0.0 ? "+" : "") << fmt(100.0 * d_time, 4)
       << "%), speedup " << fmt(b.speedup, 3) << " -> "
       << fmt(cur->speedup, 3) << " (" << (d_speedup >= 0.0 ? "+" : "")
       << fmt(100.0 * d_speedup, 4) << "%), efficiency "
       << fmt(b.efficiency, 3) << " -> " << fmt(cur->efficiency, 3) << " ("
       << (d_eff >= 0.0 ? "+" : "") << fmt(100.0 * d_eff, 4) << "%)\n";
  }
  os << (failures == 0 ? "OK" : "REGRESSION") << ": " << failures << " of "
     << baseline.size() << " tuples failed\n";
  return failures;
}

// ------------------------------------------------------------ host mode --

namespace {

/// Median of `v` (not required sorted; v is copied). 0 for empty input.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

bool same_host_tuple(const HostEntry& a, const HostEntry& b) {
  return a.harness == b.harness && a.tag == b.tag &&
         a.formulation == b.formulation && a.procs == b.procs;
}

std::string fmt_ms(double ns) { return fmt(ns / 1e6, 3); }

}  // namespace

std::vector<HostEntry> extract_host_entries(
    const std::vector<ReportInput>& inputs) {
  // Gather all repeats per tuple first (keyed by first appearance), then
  // collapse. Parallel arrays keep the code dependency-free.
  std::vector<HostEntry> tuples;
  std::vector<std::vector<double>> samples;
  for (const ReportInput& in : inputs) {
    if (in.root.get("schema").as_string() != "pdt-bench-v1") continue;
    const std::string& harness = in.root.get("harness").as_string();
    for (const JsonValue& sec : in.root.get("sections").array()) {
      if (sec.get("type").as_string() != "instrumented_run") continue;
      const JsonValue& host = sec.get("host");
      if (host.is_null()) continue;
      HostEntry e;
      e.harness = harness;
      e.tag = sec.get("tag").as_string();
      e.formulation = sec.get("formulation").as_string();
      e.procs = sec.get("procs").as_int();
      std::size_t i = 0;
      for (; i < tuples.size(); ++i) {
        if (same_host_tuple(tuples[i], e)) break;
      }
      if (i == tuples.size()) {
        tuples.push_back(std::move(e));
        samples.emplace_back();
      }
      samples[i].push_back(host.get("total_ns").as_double());
    }
  }
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    tuples[i].k = static_cast<std::int64_t>(samples[i].size());
    tuples[i].median_ns = median_of(samples[i]);
    std::vector<double> dev;
    dev.reserve(samples[i].size());
    for (const double s : samples[i]) {
      dev.push_back(std::fabs(s - tuples[i].median_ns));
    }
    tuples[i].mad_ns = median_of(std::move(dev));
  }
  return tuples;
}

bool parse_host_baseline(const JsonValue& root, std::vector<HostEntry>* out,
                         std::string* error) {
  if (root.get("schema").as_string() != "pdt-host-baseline-v1") {
    if (error != nullptr) {
      *error = "schema is not pdt-host-baseline-v1 (got \"" +
               root.get("schema").as_string() + "\")";
    }
    return false;
  }
  out->clear();
  for (const JsonValue& e : root.get("entries").array()) {
    HostEntry h;
    h.harness = e.get("harness").as_string();
    h.tag = e.get("tag").as_string();
    h.formulation = e.get("formulation").as_string();
    h.procs = e.get("procs").as_int();
    h.k = e.get("k").as_int();
    h.median_ns = e.get("median_ns").as_double();
    h.mad_ns = e.get("mad_ns").as_double();
    if (h.harness.empty() || h.tag.empty() || h.procs <= 0 ||
        h.median_ns <= 0.0) {
      if (error != nullptr) {
        *error = "host baseline entry missing harness/tag/procs/median_ns";
      }
      return false;
    }
    out->push_back(std::move(h));
  }
  return true;
}

void write_host_baseline(const std::vector<HostEntry>& entries,
                         std::ostream& os) {
  os << "{\n  \"schema\": \"pdt-host-baseline-v1\",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const HostEntry& e = entries[i];
    os << (i == 0 ? "" : ",") << "\n    {\"harness\": \""
       << json_escaped(e.harness) << "\", \"tag\": \"" << json_escaped(e.tag)
       << "\", \"formulation\": \"" << json_escaped(e.formulation)
       << "\", \"procs\": " << e.procs << ", \"k\": " << e.k
       << ", \"median_ns\": " << json_double_exact(e.median_ns)
       << ", \"mad_ns\": " << json_double_exact(e.mad_ns) << "}";
  }
  os << "\n  ]\n}\n";
}

int run_host_diff(const std::vector<HostEntry>& baseline,
                  const std::vector<HostEntry>& current,
                  const HostDiffOptions& opt, std::ostream& os) {
  // 1.4826 scales a MAD to the standard deviation it would be under
  // normal noise, so mad_k reads as a sigma count.
  constexpr double kMadToSigma = 1.4826;
  int failures = 0;
  os << "comparing " << baseline.size() << " host tuples (floor "
     << fmt(100.0 * opt.tol, 1) << "%, mad_k " << fmt(opt.mad_k, 1) << ")\n";
  for (const HostEntry& b : baseline) {
    const HostEntry* cur = nullptr;
    for (const HostEntry& c : current) {
      if (same_host_tuple(b, c)) {
        cur = &c;
        break;
      }
    }
    const std::string name = b.harness + " " + b.tag + " " + b.formulation +
                             " P=" + std::to_string(b.procs);
    if (cur == nullptr) {
      ++failures;
      os << "MISSING " << name << " — tuple absent from current results\n";
      continue;
    }
    const double band =
        std::max(opt.tol * b.median_ns,
                 opt.mad_k * kMadToSigma * (b.mad_ns + cur->mad_ns));
    const double delta = cur->median_ns - b.median_ns;
    const bool fail = std::fabs(delta) > band;
    if (fail) ++failures;
    os << (fail ? "FAIL    " : "ok      ") << name << " — median "
       << fmt_ms(b.median_ns) << " -> " << fmt_ms(cur->median_ns) << " ms ("
       << (delta >= 0.0 ? "+" : "") << fmt(100.0 * delta / b.median_ns, 1)
       << "%), band ±" << fmt_ms(band) << " ms (k=" << b.k << "/" << cur->k
       << ", mad " << fmt_ms(b.mad_ns) << "/" << fmt_ms(cur->mad_ns)
       << " ms)\n";
  }
  os << (failures == 0 ? "OK" : "REGRESSION") << ": " << failures << " of "
     << baseline.size() << " host tuples failed\n";
  return failures;
}

}  // namespace pdt::tools
