// pdt-diff — performance-regression gate over pdt-bench-v1 reports.
//
//   pdt-diff [--tol T] <baseline.json> <bench.json>...
//       Compare every baseline tuple against the bench reports; exit 1
//       if any tuple drifts past the relative tolerance T (default 1e-9,
//       i.e. "the virtual clock must not move") or is missing.
//
//   pdt-diff --extract [--procs 1,4,8] [-o baseline.json] <bench.json>...
//       Produce a pdt-diff-baseline-v1 file from the reports'
//       speedup_series sections (optionally keeping only the listed
//       processor counts), for committing next to the code.
//
// Exit codes: 0 ok, 1 regression/missing/IO error, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "diff/diff.hpp"
#include "report/json_value.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pdt-diff [--tol T] <baseline.json> <bench.json>...\n"
               "       pdt-diff --extract [--procs P,P,...] [-o out.json] "
               "<bench.json>...\n");
  return 2;
}

bool load(const std::string& path, pdt::tools::ReportInput* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "pdt-diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  out->name = path;
  std::string error;
  if (!pdt::tools::json_parse(buf.str(), &out->root, &error)) {
    std::fprintf(stderr, "pdt-diff: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool extract = false;
  double tol = 1e-9;
  std::string out_path;
  std::vector<std::int64_t> procs_filter;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--extract") == 0) {
      extract = true;
    } else if (std::strcmp(argv[i], "--tol") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      tol = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || tol < 0.0) return usage();
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      if (i + 1 >= argc) return usage();
      const char* s = argv[++i];
      while (*s != '\0') {
        char* end = nullptr;
        const long p = std::strtol(s, &end, 10);
        if (end == s || p <= 0) return usage();
        procs_filter.push_back(p);
        s = end;
        if (*s == ',') ++s;
      }
    } else if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else {
      files.emplace_back(argv[i]);
    }
  }

  if (extract) {
    if (files.empty()) return usage();
    std::vector<pdt::tools::ReportInput> inputs;
    for (const std::string& path : files) {
      pdt::tools::ReportInput in;
      if (!load(path, &in)) return 1;
      inputs.push_back(std::move(in));
    }
    const std::vector<pdt::tools::DiffEntry> entries =
        pdt::tools::extract_entries(inputs, procs_filter);
    if (entries.empty()) {
      std::fprintf(stderr,
                   "pdt-diff: no speedup_series points found to extract\n");
      return 1;
    }
    if (out_path.empty()) {
      pdt::tools::write_baseline(entries, std::cout);
    } else {
      std::ofstream os(out_path, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "pdt-diff: cannot write %s\n", out_path.c_str());
        return 1;
      }
      pdt::tools::write_baseline(entries, os);
      std::fprintf(stderr, "pdt-diff: wrote %zu tuples to %s\n",
                   entries.size(), out_path.c_str());
    }
    return 0;
  }

  if (files.size() < 2) return usage();
  pdt::tools::ReportInput base_in;
  if (!load(files[0], &base_in)) return 1;
  std::vector<pdt::tools::DiffEntry> baseline;
  std::string error;
  if (!pdt::tools::parse_baseline(base_in.root, &baseline, &error)) {
    std::fprintf(stderr, "pdt-diff: %s: %s\n", files[0].c_str(),
                 error.c_str());
    return 1;
  }
  std::vector<pdt::tools::ReportInput> inputs;
  for (std::size_t i = 1; i < files.size(); ++i) {
    pdt::tools::ReportInput in;
    if (!load(files[i], &in)) return 1;
    inputs.push_back(std::move(in));
  }
  const std::vector<pdt::tools::DiffEntry> current =
      pdt::tools::extract_entries(inputs, {});
  pdt::tools::DiffOptions opt;
  opt.tol = tol;
  return pdt::tools::run_diff(baseline, current, opt, std::cout) == 0 ? 0 : 1;
}
