// pdt-diff — performance-regression gate over pdt-bench-v1 reports.
//
//   pdt-diff [--tol T] <baseline.json> <bench.json>...
//       Compare every baseline tuple against the bench reports; exit 1
//       if any tuple drifts past the relative tolerance T (default 1e-9,
//       i.e. "the virtual clock must not move") or is missing.
//
//   pdt-diff --extract [--procs 1,4,8] [-o baseline.json] <bench.json>...
//       Produce a pdt-diff-baseline-v1 file from the reports'
//       speedup_series sections (optionally keeping only the listed
//       processor counts), for committing next to the code.
//
// Exit codes follow the suite convention in common/cli.hpp.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "diff/diff.hpp"

namespace {

constexpr pdt::tools::CliSpec kSpec = {
    "pdt-diff",
    "usage: pdt-diff [--tol T] <baseline.json> <bench.json>...\n"
    "       pdt-diff --extract [--procs P,P,...] [-o out.json] "
    "<bench.json>...\n"
    "\n"
    "Gate the bench reports' headline tuples against a committed\n"
    "baseline (exit 1 on drift past T), or extract a fresh baseline.\n"
    "\n"
    "  --tol T       relative tolerance (default 1e-9)\n"
    "  --procs P,..  keep only these processor counts when extracting\n"
    "  -o out.json   write the extracted baseline to out.json\n"
    "  -h, --help    show this help\n"
    "  --version     print the tool-suite version\n",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pdt::tools;
  bool extract = false;
  double tol = 1e-9;
  std::string out_path;
  std::vector<std::int64_t> procs_filter;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int code = kExitOk;
    if (standard_flag(kSpec, arg, &code)) return code;
    if (arg == "--extract") {
      extract = true;
    } else if (arg == "--tol") {
      if (i + 1 >= argc) return usage(kSpec);
      char* end = nullptr;
      tol = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || tol < 0.0) return usage(kSpec);
    } else if (arg == "--procs") {
      if (i + 1 >= argc) return usage(kSpec);
      const char* s = argv[++i];
      while (*s != '\0') {
        char* end = nullptr;
        const long p = std::strtol(s, &end, 10);
        if (end == s || p <= 0) return usage(kSpec);
        procs_filter.push_back(p);
        s = end;
        if (*s == ',') ++s;
      }
    } else if (arg == "-o") {
      if (i + 1 >= argc) return usage(kSpec);
      out_path = argv[++i];
    } else {
      files.emplace_back(arg);
    }
  }

  if (extract) {
    if (files.empty()) return usage(kSpec);
    std::vector<ReportInput> inputs;
    for (const std::string& path : files) {
      ReportInput in;
      in.name = path;
      if (!load_json_file(kSpec, path, &in.root)) return kExitUsage;
      inputs.push_back(std::move(in));
    }
    const std::vector<DiffEntry> entries =
        extract_entries(inputs, procs_filter);
    if (entries.empty()) {
      std::fprintf(stderr,
                   "pdt-diff: no speedup_series points found to extract\n");
      return kExitFail;
    }
    if (out_path.empty()) {
      write_baseline(entries, std::cout);
    } else {
      std::ofstream os(out_path, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "pdt-diff: cannot write %s\n", out_path.c_str());
        return kExitFail;
      }
      write_baseline(entries, os);
      std::fprintf(stderr, "pdt-diff: wrote %zu tuples to %s\n",
                   entries.size(), out_path.c_str());
    }
    return kExitOk;
  }

  if (files.size() < 2) return usage(kSpec);
  ReportInput base_in;
  base_in.name = files[0];
  if (!load_json_file(kSpec, files[0], &base_in.root)) return kExitUsage;
  std::vector<DiffEntry> baseline;
  std::string error;
  if (!parse_baseline(base_in.root, &baseline, &error)) {
    std::fprintf(stderr, "pdt-diff: %s: %s\n", files[0].c_str(),
                 error.c_str());
    return kExitUsage;
  }
  std::vector<ReportInput> inputs;
  for (std::size_t i = 1; i < files.size(); ++i) {
    ReportInput in;
    in.name = files[i];
    if (!load_json_file(kSpec, files[i], &in.root)) return kExitUsage;
    inputs.push_back(std::move(in));
  }
  const std::vector<DiffEntry> current = extract_entries(inputs, {});
  DiffOptions opt;
  opt.tol = tol;
  return run_diff(baseline, current, opt, std::cout) == 0 ? kExitOk
                                                          : kExitFail;
}
