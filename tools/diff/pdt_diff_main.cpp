// pdt-diff — performance-regression gate over pdt-bench-v1 reports.
//
//   pdt-diff [--tol T] <baseline.json> <bench.json>...
//       Compare every baseline tuple against the bench reports; exit 1
//       if any tuple drifts past the relative tolerance T (default 1e-9,
//       i.e. "the virtual clock must not move") or is missing.
//
//   pdt-diff --extract [--procs 1,4,8] [-o baseline.json] <bench.json>...
//       Produce a pdt-diff-baseline-v1 file from the reports'
//       speedup_series sections (optionally keeping only the listed
//       processor counts), for committing next to the code.
//
// Exit codes follow the suite convention in common/cli.hpp.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "diff/diff.hpp"

namespace {

constexpr pdt::tools::CliSpec kSpec = {
    "pdt-diff",
    "usage: pdt-diff [--tol T] <baseline.json> <bench.json>...\n"
    "       pdt-diff --extract [--procs P,P,...] [-o out.json] "
    "<bench.json>...\n"
    "       pdt-diff --host [--tol T] [--mad-k K] <baseline.json> "
    "<bench.json>...\n"
    "       pdt-diff --host --extract [-o out.json] <bench.json>...\n"
    "\n"
    "Gate the bench reports' headline tuples against a committed\n"
    "baseline (exit 1 on drift past T), or extract a fresh baseline.\n"
    "\n"
    "Default mode gates the deterministic virtual clock; --host gates\n"
    "the noisy wall-clock medians instead: pass one bench envelope per\n"
    "repeat, tuples collapse to median-of-k with a MAD-scaled band\n"
    "  band = max(T * base_median, K * 1.4826 * (base_mad + cur_mad)).\n"
    "By default T = 0.5 and K = 5: a tuple passes while its median\n"
    "stays within 50% of the baseline median OR within ~5 sigmas of\n"
    "the combined baseline+current jitter (1.4826 * MAD estimates one\n"
    "sigma under normal noise), whichever band is wider. The relative\n"
    "floor keeps a near-zero-MAD baseline from demanding bit-exact wall\n"
    "time; the MAD term forgives honestly measured jitter. Full\n"
    "semantics: DESIGN.md section 9.\n"
    "\n"
    "  --host        operate on host wall time (median-of-k + MAD)\n"
    "  --tol T       relative tolerance (default 1e-9; 0.5 with --host)\n"
    "  --mad-k K     sigmas of jitter to forgive with --host (default 5)\n"
    "  --procs P,..  keep only these processor counts when extracting\n"
    "  -o out.json   write the extracted baseline to out.json (atomic)\n"
    "  -h, --help    show this help\n"
    "  --version     print the tool-suite version\n",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pdt::tools;
  bool extract = false;
  bool host = false;
  bool tol_set = false;
  double tol = 1e-9;
  double mad_k = 5.0;
  std::string out_path;
  std::vector<std::int64_t> procs_filter;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int code = kExitOk;
    if (standard_flag(kSpec, arg, &code)) return code;
    if (arg == "--extract") {
      extract = true;
    } else if (arg == "--host") {
      host = true;
    } else if (arg == "--tol") {
      if (i + 1 >= argc) return usage(kSpec);
      char* end = nullptr;
      tol = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || tol < 0.0) return usage(kSpec);
      tol_set = true;
    } else if (arg == "--mad-k") {
      if (i + 1 >= argc) return usage(kSpec);
      char* end = nullptr;
      mad_k = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || mad_k < 0.0) return usage(kSpec);
    } else if (arg == "--procs") {
      if (i + 1 >= argc) return usage(kSpec);
      const char* s = argv[++i];
      while (*s != '\0') {
        char* end = nullptr;
        const long p = std::strtol(s, &end, 10);
        if (end == s || p <= 0) return usage(kSpec);
        procs_filter.push_back(p);
        s = end;
        if (*s == ',') ++s;
      }
    } else if (arg == "-o") {
      if (i + 1 >= argc) return usage(kSpec);
      out_path = argv[++i];
    } else {
      files.emplace_back(arg);
    }
  }

  if (extract) {
    if (files.empty()) return usage(kSpec);
    std::vector<ReportInput> inputs;
    for (const std::string& path : files) {
      ReportInput in;
      in.name = path;
      if (!load_json_file(kSpec, path, &in.root)) return kExitUsage;
      inputs.push_back(std::move(in));
    }
    std::ostringstream doc;
    std::size_t count = 0;
    if (host) {
      const std::vector<HostEntry> entries = extract_host_entries(inputs);
      if (entries.empty()) {
        std::fprintf(stderr,
                     "pdt-diff: no instrumented_run host sections found to "
                     "extract\n");
        return kExitFail;
      }
      count = entries.size();
      write_host_baseline(entries, doc);
    } else {
      const std::vector<DiffEntry> entries =
          extract_entries(inputs, procs_filter);
      if (entries.empty()) {
        std::fprintf(stderr,
                     "pdt-diff: no speedup_series points found to extract\n");
        return kExitFail;
      }
      count = entries.size();
      write_baseline(entries, doc);
    }
    if (out_path.empty()) {
      std::cout << doc.str();
    } else {
      if (!write_file_atomic(kSpec, out_path, doc.str())) return kExitFail;
      std::fprintf(stderr, "pdt-diff: wrote %zu tuples to %s\n", count,
                   out_path.c_str());
    }
    return kExitOk;
  }

  if (files.size() < 2) return usage(kSpec);
  ReportInput base_in;
  base_in.name = files[0];
  if (!load_json_file(kSpec, files[0], &base_in.root)) return kExitUsage;
  std::vector<ReportInput> inputs;
  for (std::size_t i = 1; i < files.size(); ++i) {
    ReportInput in;
    in.name = files[i];
    if (!load_json_file(kSpec, files[i], &in.root)) return kExitUsage;
    inputs.push_back(std::move(in));
  }

  std::string error;
  if (host) {
    std::vector<HostEntry> baseline;
    if (!parse_host_baseline(base_in.root, &baseline, &error)) {
      std::fprintf(stderr, "pdt-diff: %s: %s\n", files[0].c_str(),
                   error.c_str());
      return kExitUsage;
    }
    const std::vector<HostEntry> current = extract_host_entries(inputs);
    HostDiffOptions opt;
    if (tol_set) opt.tol = tol;
    opt.mad_k = mad_k;
    return run_host_diff(baseline, current, opt, std::cout) == 0 ? kExitOk
                                                                 : kExitFail;
  }

  std::vector<DiffEntry> baseline;
  if (!parse_baseline(base_in.root, &baseline, &error)) {
    std::fprintf(stderr, "pdt-diff: %s: %s\n", files[0].c_str(),
                 error.c_str());
    return kExitUsage;
  }
  const std::vector<DiffEntry> current = extract_entries(inputs, {});
  DiffOptions opt;
  opt.tol = tol;
  return run_diff(baseline, current, opt, std::cout) == 0 ? kExitOk
                                                          : kExitFail;
}
