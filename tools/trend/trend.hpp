// Cross-run performance history: the pdt-runs-v1 registry, changepoint
// gating, and regression explanation.
//
// pdt-diff answers "did THIS build drift from ONE committed baseline?".
// pdt-trend answers the production question the paper's Fig. 6-9
// arguments rest on: "what is the *trajectory*?" — a perf time series
// across harness runs, each record stamped with the EnvFingerprint of
// the build that produced it, so a regression can be pinned to a commit,
// a compiler, or a machine change.
//
// The registry is an append-only JSONL archive (one pdt-runs-v1 record
// per line, one record per harness run) holding, per run:
//   * the fingerprint (git SHA + dirty, compiler/flags, CPU, hostname,
//     PDT_* env) copied verbatim from the bench envelope,
//   * every deterministic virtual tuple (harness, workload, formulation,
//     procs) -> time_us/speedup/efficiency,
//   * every host tuple collapsed to median-of-k + MAD across the run's
//     repeat envelopes, with the per-(phase, level) host-nanosecond
//     cells that let `explain` name what moved,
//   * optional wait-for blame edges from pdt-replay-v1 inputs.
//
// `check` is the noise-aware gate over the series: for each tuple in
// the latest record, the trailing window of earlier records collapses
// to median + MAD and the verdict uses the same band semantics as
// `pdt-diff --host` (DESIGN.md section 9):
//   band = max(tol * window_median, mad_k * 1.4826 * (window_mad + cur_mad))
// A latest value above the band is a REGRESSION (exit 1); below it is an
// IMPROVEMENT (a changepoint worth a look, not a failure). The same
// rolling test applied at every prior position yields the changepoint
// markers the trend report draws.
//
// Like every tool here, pdt-trend links no simulator libraries and its
// outputs depend only on the input bytes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_value.hpp"
#include "diff/diff.hpp"

namespace pdt::tools {

/// One (phase, level) host-time cell of a tuple: the median host
/// nanoseconds the cell cost across the run's repeats, next to the
/// virtual microseconds the simulator charged the same cell.
struct TrendCell {
  std::string phase;
  int level = -1;
  double host_ns = 0.0;
  double virtual_us = 0.0;
};

/// A host tuple (median-of-k + MAD, as in pdt-diff --host) plus its
/// per-(phase, level) attribution cells.
struct TrendHostTuple {
  HostEntry entry;
  std::vector<TrendCell> cells;
};

/// One model tuple: the classifier a tagged run grew, identified by its
/// pdt-model-v1 content digest. Model drift is gated like perf drift —
/// the digest is deterministic, so any change against the previous
/// sighting of the same (harness, tag, formulation, procs) key is a
/// regression until the history is deliberately re-baselined.
struct TrendModelTuple {
  std::string harness;
  std::string tag;
  std::string formulation;
  std::int64_t procs = 0;
  std::string digest;
  std::int64_t nodes = 0;
  std::int64_t leaves = 0;
  std::int64_t depth = 0;
  double accuracy = 0.0;  ///< held-out accuracy recorded by the harness
};

/// One fault-tolerance tuple from a pdt-ft-v1 section row: the virtual
/// cost of one (formulation, P, scenario) resilience run, plus the
/// recovery/retry/resume overheads that must not silently creep. All
/// values are virtual-clock quantities, so the series is deterministic
/// and gated with the tight virtual tolerance; tree_identical=false in
/// the latest record is an unconditional regression.
struct TrendFtTuple {
  std::string harness;
  std::string formulation;
  std::int64_t procs = 0;
  std::string scenario;
  double time_us = 0.0;
  /// checkpoint_io + detect + recovery + retry + durable_io + resume_io:
  /// everything the run spent on resilience rather than tree growth.
  double overhead_us = 0.0;
  double retry_us = 0.0;
  std::int64_t retries = 0;
  std::int64_t resume_records = 0;
  bool tree_identical = true;
};

/// One concurrency tuple from a pdt-threads-v1 section: the thread
/// census and drop/contention totals one instrumented run recorded.
/// Carried along (not gated) so a perf move in the host series can be
/// cross-checked against "did the run start dropping samples or
/// fighting over locks?".
struct TrendThreadsTuple {
  std::string harness;
  std::string tag;
  std::string formulation;
  std::int64_t procs = 0;
  std::int64_t peak_active = 0;  ///< peak concurrently-registered threads
  std::int64_t dropped = 0;      ///< samples/events lost across collectors
  std::int64_t contended = 0;    ///< contended lock acquisitions
  std::int64_t wait_ns = 0;      ///< total nanoseconds spent waiting
};

/// One wait-for blame edge carried along from a pdt-replay-v1 report.
struct TrendBlameEdge {
  std::int64_t idler = 0;
  std::int64_t level = -1;
  std::int64_t holder = 0;
  std::string holder_phase;
  double idle_us = 0.0;
};

/// One registry record: everything one harness run (possibly k repeat
/// envelopes) contributes to the perf time series.
struct RunRecord {
  std::int64_t seq = 0;       ///< 1-based position in the registry
  std::string timestamp;      ///< ISO-8601, supplied by the writer
  std::string label;          ///< free-form, e.g. the CI run id
  JsonValue fingerprint;      ///< obs::EnvFingerprint object (may be null)
  std::vector<DiffEntry> virt;
  std::vector<TrendHostTuple> host;
  std::vector<TrendModelTuple> model;
  std::vector<TrendFtTuple> ft;
  std::vector<TrendBlameEdge> blame;
  std::vector<TrendThreadsTuple> threads;
};

// ------------------------------------------------------------ registry --

/// Parse a pdt-runs-v1 JSONL registry (one record per non-blank line).
/// Returns false on a malformed line or wrong schema (error names the
/// line). An empty/whitespace-only text parses to an empty registry.
[[nodiscard]] bool parse_registry(std::string_view text,
                                  std::vector<RunRecord>* out,
                                  std::string* error);

/// Serialize one record as a single JSONL line (no trailing newline).
[[nodiscard]] std::string record_line(const RunRecord& rec);

/// Serialize the whole registry (newline-terminated lines).
[[nodiscard]] std::string registry_text(const std::vector<RunRecord>& runs);

/// Build one record from a run's envelopes: virtual tuples from every
/// speedup_series point, host tuples collapsed to median-of-k + MAD
/// across the inputs (each envelope = one repeat) with per-cell medians,
/// the fingerprint copied from the first envelope that carries one, and
/// blame edges from any pdt-replay-v1 inputs. seq/timestamp/label are
/// left for the caller.
[[nodiscard]] RunRecord record_from_envelopes(
    const std::vector<ReportInput>& inputs);

/// Fold one pre-registry artifact into a record: a pdt-diff-baseline-v1
/// (virtual tuples), a pdt-host-baseline-v1 (host tuples, no cells), or
/// a full pdt-bench-v1 envelope. Returns false on any other schema.
[[nodiscard]] bool record_from_artifact(const ReportInput& input,
                                        RunRecord* out, std::string* error);

// ------------------------------------------------------------ analysis --

struct TrendOptions {
  int window = 5;      ///< trailing records the baseline collapses from
  double tol = 0.5;    ///< host relative floor (matches pdt-diff --host)
  double mad_k = 5.0;  ///< host sigmas of combined jitter to forgive
  double vtol = 0.02;  ///< virtual relative tolerance (matches the CI gate)
  int top_cells = 5;   ///< (phase, level) cells ranked per explanation
};

/// Changepoint/drift check over the registry: write a verdict line per
/// tuple of the latest record to `os` and, when `doc` is non-null, the
/// machine-readable pdt-trend-v1 report (series, changepoint markers,
/// explain summaries — what pdt-report renders as the trend section).
/// Returns the number of regressions (0 when the registry holds fewer
/// than two records — no history, nothing to gate).
[[nodiscard]] int run_trend_check(const std::vector<RunRecord>& runs,
                                  const TrendOptions& opt, std::ostream& os,
                                  std::string* doc);

/// Explain a tuple's move: join the latest record's per-(phase, level)
/// host cells against the most recent earlier record carrying the same
/// tuple, rank cells by |delta|, and name the ones that account for the
/// delta (plus a blame-edge delta table when both records carry edges).
/// `tuple_filter` substring-matches "harness tag formulation P=N"; empty
/// explains every tuple the check flags. Returns false (after a
/// diagnostic on `os`) when nothing matches or there is no history.
[[nodiscard]] bool run_trend_explain(const std::vector<RunRecord>& runs,
                                     const std::string& tuple_filter,
                                     const TrendOptions& opt,
                                     std::ostream& os);

/// Human-readable registry listing (one line per record).
void run_trend_list(const std::vector<RunRecord>& runs, std::ostream& os);

}  // namespace pdt::tools
