#include "trend/trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pdt::tools {

namespace {

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return std::string(buf);
}

std::string fmt_ms(double ns) { return fmt(ns / 1e6, 3); }

/// Median of `v` (copied; not required sorted). 0 for empty input.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

/// MAD of `v` around its own median.
double mad_of(const std::vector<double>& v) {
  const double med = median_of(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double s : v) dev.push_back(std::fabs(s - med));
  return median_of(std::move(dev));
}

bool same_virt(const DiffEntry& a, const DiffEntry& b) {
  return a.harness == b.harness && a.workload == b.workload &&
         a.formulation == b.formulation && a.procs == b.procs;
}

bool same_host(const HostEntry& a, const HostEntry& b) {
  return a.harness == b.harness && a.tag == b.tag &&
         a.formulation == b.formulation && a.procs == b.procs;
}

std::string virt_name(const DiffEntry& e) {
  return e.harness + " " + e.workload + " " + e.formulation +
         " P=" + std::to_string(e.procs);
}

std::string host_name(const HostEntry& e) {
  return e.harness + " " + e.tag + " " + e.formulation +
         " P=" + std::to_string(e.procs);
}

bool same_model(const TrendModelTuple& a, const TrendModelTuple& b) {
  return a.harness == b.harness && a.tag == b.tag &&
         a.formulation == b.formulation && a.procs == b.procs;
}

std::string model_name(const TrendModelTuple& m) {
  return m.harness + " " + m.tag + " " + m.formulation +
         " P=" + std::to_string(m.procs);
}

bool same_ft(const TrendFtTuple& a, const TrendFtTuple& b) {
  return a.harness == b.harness && a.formulation == b.formulation &&
         a.procs == b.procs && a.scenario == b.scenario;
}

std::string ft_name(const TrendFtTuple& f) {
  return f.harness + " " + f.formulation + " P=" + std::to_string(f.procs) +
         " " + f.scenario;
}

bool same_threads(const TrendThreadsTuple& a, const TrendThreadsTuple& b) {
  return a.harness == b.harness && a.tag == b.tag &&
         a.formulation == b.formulation && a.procs == b.procs;
}

}  // namespace

// -------------------------------------------------------------- registry --

bool parse_registry(std::string_view text, std::vector<RunRecord>* out,
                    std::string* error) {
  out->clear();
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    // Blank (or whitespace-only) lines are tolerated so hand edits and
    // partial tails from a crashed appender don't poison the archive.
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const auto fail = [&](const std::string& why) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + why;
      }
      return false;
    };
    JsonValue root;
    std::string perr;
    if (!json_parse(line, &root, &perr)) return fail(perr);
    if (root.get("schema").as_string() != "pdt-runs-v1") {
      return fail("schema is not pdt-runs-v1 (got \"" +
                  root.get("schema").as_string() + "\")");
    }
    RunRecord rec;
    rec.seq = root.get("seq").as_int();
    rec.timestamp = root.get("timestamp").as_string();
    rec.label = root.get("label").as_string();
    rec.fingerprint = root.get("fingerprint");
    if (rec.seq <= 0) return fail("record missing a positive seq");
    for (const JsonValue& e : root.get("virtual").array()) {
      DiffEntry d;
      d.harness = e.get("harness").as_string();
      d.workload = e.get("workload").as_string();
      d.formulation = e.get("formulation").as_string();
      d.procs = e.get("procs").as_int();
      d.time_us = e.get("time_us").as_double();
      d.speedup = e.get("speedup").as_double();
      d.efficiency = e.get("efficiency").as_double();
      if (d.harness.empty() || d.procs <= 0) {
        return fail("virtual tuple missing harness or procs");
      }
      rec.virt.push_back(std::move(d));
    }
    for (const JsonValue& e : root.get("host").array()) {
      TrendHostTuple t;
      t.entry.harness = e.get("harness").as_string();
      t.entry.tag = e.get("tag").as_string();
      t.entry.formulation = e.get("formulation").as_string();
      t.entry.procs = e.get("procs").as_int();
      t.entry.k = e.get("k").as_int();
      t.entry.median_ns = e.get("median_ns").as_double();
      t.entry.mad_ns = e.get("mad_ns").as_double();
      if (t.entry.harness.empty() || t.entry.procs <= 0 ||
          t.entry.median_ns <= 0.0) {
        return fail("host tuple missing harness/procs/median_ns");
      }
      for (const JsonValue& c : e.get("cells").array()) {
        TrendCell cell;
        cell.phase = c.get("phase").as_string();
        cell.level = static_cast<int>(c.get("level").as_int(-1));
        cell.host_ns = c.get("host_ns").as_double();
        cell.virtual_us = c.get("virtual_us").as_double();
        t.cells.push_back(std::move(cell));
      }
      rec.host.push_back(std::move(t));
    }
    // "model" is absent from pre-0.9 registries — an empty list then.
    for (const JsonValue& e : root.get("model").array()) {
      TrendModelTuple m;
      m.harness = e.get("harness").as_string();
      m.tag = e.get("tag").as_string();
      m.formulation = e.get("formulation").as_string();
      m.procs = e.get("procs").as_int();
      m.digest = e.get("digest").as_string();
      m.nodes = e.get("nodes").as_int();
      m.leaves = e.get("leaves").as_int();
      m.depth = e.get("depth").as_int();
      m.accuracy = e.get("accuracy").as_double();
      if (m.harness.empty() || m.digest.empty()) {
        return fail("model tuple missing harness or digest");
      }
      rec.model.push_back(std::move(m));
    }
    // "ft" is absent from registries written before the resilience
    // tuples existed — an empty list then.
    for (const JsonValue& e : root.get("ft").array()) {
      TrendFtTuple f;
      f.harness = e.get("harness").as_string();
      f.formulation = e.get("formulation").as_string();
      f.procs = e.get("procs").as_int();
      f.scenario = e.get("scenario").as_string();
      f.time_us = e.get("time_us").as_double();
      f.overhead_us = e.get("overhead_us").as_double();
      f.retry_us = e.get("retry_us").as_double();
      f.retries = e.get("retries").as_int();
      f.resume_records = e.get("resume_records").as_int();
      f.tree_identical = e.get("tree_identical").as_bool(true);
      if (f.harness.empty() || f.scenario.empty()) {
        return fail("ft tuple missing harness or scenario");
      }
      rec.ft.push_back(std::move(f));
    }
    // "threads" is absent from registries written before the
    // concurrency telemetry existed — an empty list then.
    for (const JsonValue& e : root.get("threads").array()) {
      TrendThreadsTuple t;
      t.harness = e.get("harness").as_string();
      t.tag = e.get("tag").as_string();
      t.formulation = e.get("formulation").as_string();
      t.procs = e.get("procs").as_int();
      t.peak_active = e.get("peak_active").as_int();
      t.dropped = e.get("dropped").as_int();
      t.contended = e.get("contended").as_int();
      t.wait_ns = e.get("wait_ns").as_int();
      if (t.harness.empty()) return fail("threads tuple missing harness");
      rec.threads.push_back(std::move(t));
    }
    for (const JsonValue& e : root.get("blame").array()) {
      TrendBlameEdge b;
      b.idler = e.get("idler").as_int();
      b.level = e.get("level").as_int(-1);
      b.holder = e.get("holder").as_int();
      b.holder_phase = e.get("holder_phase").as_string();
      b.idle_us = e.get("idle_us").as_double();
      rec.blame.push_back(std::move(b));
    }
    out->push_back(std::move(rec));
  }
  return true;
}

std::string record_line(const RunRecord& rec) {
  std::ostringstream os;
  os << "{\"schema\": \"pdt-runs-v1\", \"seq\": " << rec.seq
     << ", \"timestamp\": \"" << json_escaped(rec.timestamp)
     << "\", \"label\": \"" << json_escaped(rec.label) << "\"";
  if (!rec.fingerprint.is_null()) {
    os << ", \"fingerprint\": " << json_serialize(rec.fingerprint);
  }
  os << ", \"virtual\": [";
  for (std::size_t i = 0; i < rec.virt.size(); ++i) {
    const DiffEntry& e = rec.virt[i];
    os << (i == 0 ? "" : ", ") << "{\"harness\": \"" << json_escaped(e.harness)
       << "\", \"workload\": \"" << json_escaped(e.workload)
       << "\", \"formulation\": \"" << json_escaped(e.formulation)
       << "\", \"procs\": " << e.procs
       << ", \"time_us\": " << json_double_exact(e.time_us)
       << ", \"speedup\": " << json_double_exact(e.speedup)
       << ", \"efficiency\": " << json_double_exact(e.efficiency) << "}";
  }
  os << "], \"host\": [";
  for (std::size_t i = 0; i < rec.host.size(); ++i) {
    const TrendHostTuple& t = rec.host[i];
    os << (i == 0 ? "" : ", ") << "{\"harness\": \""
       << json_escaped(t.entry.harness) << "\", \"tag\": \""
       << json_escaped(t.entry.tag) << "\", \"formulation\": \""
       << json_escaped(t.entry.formulation)
       << "\", \"procs\": " << t.entry.procs << ", \"k\": " << t.entry.k
       << ", \"median_ns\": " << json_double_exact(t.entry.median_ns)
       << ", \"mad_ns\": " << json_double_exact(t.entry.mad_ns)
       << ", \"cells\": [";
    for (std::size_t c = 0; c < t.cells.size(); ++c) {
      const TrendCell& cell = t.cells[c];
      os << (c == 0 ? "" : ", ") << "{\"phase\": \""
         << json_escaped(cell.phase) << "\", \"level\": " << cell.level
         << ", \"host_ns\": " << json_double_exact(cell.host_ns)
         << ", \"virtual_us\": " << json_double_exact(cell.virtual_us) << "}";
    }
    os << "]}";
  }
  os << "], \"model\": [";
  for (std::size_t i = 0; i < rec.model.size(); ++i) {
    const TrendModelTuple& m = rec.model[i];
    os << (i == 0 ? "" : ", ") << "{\"harness\": \""
       << json_escaped(m.harness) << "\", \"tag\": \"" << json_escaped(m.tag)
       << "\", \"formulation\": \"" << json_escaped(m.formulation)
       << "\", \"procs\": " << m.procs << ", \"digest\": \""
       << json_escaped(m.digest) << "\", \"nodes\": " << m.nodes
       << ", \"leaves\": " << m.leaves << ", \"depth\": " << m.depth
       << ", \"accuracy\": " << json_double_exact(m.accuracy) << "}";
  }
  os << "], \"ft\": [";
  for (std::size_t i = 0; i < rec.ft.size(); ++i) {
    const TrendFtTuple& f = rec.ft[i];
    os << (i == 0 ? "" : ", ") << "{\"harness\": \""
       << json_escaped(f.harness) << "\", \"formulation\": \""
       << json_escaped(f.formulation) << "\", \"procs\": " << f.procs
       << ", \"scenario\": \"" << json_escaped(f.scenario)
       << "\", \"time_us\": " << json_double_exact(f.time_us)
       << ", \"overhead_us\": " << json_double_exact(f.overhead_us)
       << ", \"retry_us\": " << json_double_exact(f.retry_us)
       << ", \"retries\": " << f.retries
       << ", \"resume_records\": " << f.resume_records
       << ", \"tree_identical\": " << (f.tree_identical ? "true" : "false")
       << "}";
  }
  os << "], \"blame\": [";
  for (std::size_t i = 0; i < rec.blame.size(); ++i) {
    const TrendBlameEdge& b = rec.blame[i];
    os << (i == 0 ? "" : ", ") << "{\"idler\": " << b.idler
       << ", \"level\": " << b.level << ", \"holder\": " << b.holder
       << ", \"holder_phase\": \"" << json_escaped(b.holder_phase)
       << "\", \"idle_us\": " << json_double_exact(b.idle_us) << "}";
  }
  os << "]";
  // Omitted when empty so registries written before the concurrency
  // telemetry existed re-serialize byte-identically.
  if (!rec.threads.empty()) {
    os << ", \"threads\": [";
    for (std::size_t i = 0; i < rec.threads.size(); ++i) {
      const TrendThreadsTuple& t = rec.threads[i];
      os << (i == 0 ? "" : ", ") << "{\"harness\": \""
         << json_escaped(t.harness) << "\", \"tag\": \""
         << json_escaped(t.tag) << "\", \"formulation\": \""
         << json_escaped(t.formulation) << "\", \"procs\": " << t.procs
         << ", \"peak_active\": " << t.peak_active
         << ", \"dropped\": " << t.dropped
         << ", \"contended\": " << t.contended
         << ", \"wait_ns\": " << t.wait_ns << "}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string registry_text(const std::vector<RunRecord>& runs) {
  std::string out;
  for (const RunRecord& rec : runs) {
    out += record_line(rec);
    out += '\n';
  }
  return out;
}

RunRecord record_from_envelopes(const std::vector<ReportInput>& inputs) {
  RunRecord rec;
  // The virtual clock is deterministic, so repeat envelopes carry
  // identical tuples — keep the first sighting of each.
  for (DiffEntry& e : extract_entries(inputs, {})) {
    bool seen = false;
    for (const DiffEntry& u : rec.virt) {
      if (same_virt(u, e)) {
        seen = true;
        break;
      }
    }
    if (!seen) rec.virt.push_back(std::move(e));
  }
  const std::vector<HostEntry> entries = extract_host_entries(inputs);
  rec.host.reserve(entries.size());
  for (const HostEntry& e : entries) {
    TrendHostTuple t;
    t.entry = e;
    rec.host.push_back(std::move(t));
  }

  // Per-(phase, level) cells: every repeat contributes one sample per
  // cell; collapse to the median so one noisy repeat cannot skew the
  // attribution explain leans on. virtual_us is deterministic across
  // repeats, so first-seen wins. samples[t][c] mirrors rec.host[t].cells.
  std::vector<std::vector<std::vector<double>>> samples(rec.host.size());
  for (const ReportInput& in : inputs) {
    if (in.root.get("schema").as_string() != "pdt-bench-v1") continue;
    const std::string& harness = in.root.get("harness").as_string();
    if (rec.fingerprint.is_null() && in.root.has("fingerprint")) {
      rec.fingerprint = in.root.get("fingerprint");
    }
    for (const JsonValue& sec : in.root.get("sections").array()) {
      if (sec.get("type").as_string() == "model") {
        // Deterministic like the virtual clock: repeats carry identical
        // model sections, keep the first sighting of each key.
        TrendModelTuple m;
        m.harness = harness;
        m.tag = sec.get("tag").as_string();
        m.formulation = sec.get("formulation").as_string();
        m.procs = sec.get("procs").as_int();
        m.digest = sec.get("digest").as_string();
        m.nodes = sec.get("nodes").as_int();
        m.leaves = sec.get("leaves").as_int();
        m.depth = sec.get("depth").as_int();
        m.accuracy = sec.get("accuracy").as_double();
        bool seen = false;
        for (const TrendModelTuple& u : rec.model) {
          seen = seen || same_model(u, m);
        }
        if (!seen && !m.digest.empty()) rec.model.push_back(std::move(m));
        continue;
      }
      if (sec.get("type").as_string() == "fault_tolerance" &&
          sec.get("schema").as_string() == "pdt-ft-v1") {
        // Deterministic virtual quantities: repeats carry identical
        // rows, keep the first sighting of each key. Retry/durable
        // fields are absent from pre-§13 artifacts and default to 0.
        const std::string formulation = sec.get("formulation").as_string();
        const std::int64_t procs = sec.get("procs").as_int();
        for (const JsonValue& row : sec.get("rows").array()) {
          TrendFtTuple f;
          f.harness = harness;
          f.formulation = formulation;
          f.procs = procs;
          f.scenario = row.get("scenario").as_string();
          f.time_us = row.get("time_us").as_double();
          f.overhead_us = row.get("checkpoint_io_us").as_double() +
                          row.get("detect_us").as_double() +
                          row.get("recovery_us").as_double() +
                          row.get("retry_us").as_double() +
                          row.get("durable_io_us").as_double() +
                          row.get("resume_io_us").as_double();
          f.retry_us = row.get("retry_us").as_double();
          f.retries = row.get("retries").as_int();
          f.resume_records = row.get("resume_records").as_int();
          f.tree_identical = row.get("tree_identical").as_bool(true);
          bool seen = false;
          for (const TrendFtTuple& u : rec.ft) seen = seen || same_ft(u, f);
          if (!seen && !f.scenario.empty()) rec.ft.push_back(std::move(f));
        }
        continue;
      }
      if (sec.get("type").as_string() != "instrumented_run") continue;
      // Concurrency telemetry rides along when the envelope carries a
      // pdt-threads-v1 overlay (only multithreaded or lossy runs do).
      // First sighting per key wins, like the other section tuples.
      const JsonValue& thr = sec.get("threads");
      if (!thr.is_null()) {
        TrendThreadsTuple t;
        t.harness = harness;
        t.tag = sec.get("tag").as_string();
        t.formulation = sec.get("formulation").as_string();
        t.procs = sec.get("procs").as_int();
        t.peak_active = thr.get("registry").get("peak_active").as_int();
        for (const JsonValue& c : thr.get("collectors").array()) {
          t.dropped += c.get("dropped").as_int();
        }
        for (const JsonValue& l : thr.get("locks").array()) {
          t.contended += l.get("contended").as_int();
          t.wait_ns += l.get("wait_ns").as_int();
        }
        bool seen = false;
        for (const TrendThreadsTuple& u : rec.threads) {
          seen = seen || same_threads(u, t);
        }
        if (!seen) rec.threads.push_back(std::move(t));
      }
      const JsonValue& host = sec.get("host");
      if (host.is_null()) continue;
      HostEntry key;
      key.harness = harness;
      key.tag = sec.get("tag").as_string();
      key.formulation = sec.get("formulation").as_string();
      key.procs = sec.get("procs").as_int();
      std::size_t ti = 0;
      for (; ti < rec.host.size(); ++ti) {
        if (same_host(rec.host[ti].entry, key)) break;
      }
      if (ti == rec.host.size()) continue;
      for (const JsonValue& group : host.get("phases").array()) {
        const std::string& phase = group.get("phase").as_string();
        const int level = static_cast<int>(group.get("level").as_int(-1));
        std::vector<TrendCell>& cells = rec.host[ti].cells;
        std::size_t ci = 0;
        for (; ci < cells.size(); ++ci) {
          if (cells[ci].phase == phase && cells[ci].level == level) break;
        }
        if (ci == cells.size()) {
          TrendCell c;
          c.phase = phase;
          c.level = level;
          c.virtual_us = group.get("virtual_us").as_double();
          cells.push_back(std::move(c));
          samples[ti].emplace_back();
        }
        samples[ti][ci].push_back(group.get("total_ns").as_double());
      }
    }
  }
  for (std::size_t ti = 0; ti < rec.host.size(); ++ti) {
    for (std::size_t ci = 0; ci < rec.host[ti].cells.size(); ++ci) {
      rec.host[ti].cells[ci].host_ns = median_of(samples[ti][ci]);
    }
  }

  // Wait-for blame edges from any pdt-replay-v1 inputs riding along.
  for (const ReportInput& in : inputs) {
    if (in.root.get("schema").as_string() != "pdt-replay-v1") continue;
    for (const JsonValue& e :
         in.root.get("replay").get("blame").array()) {
      TrendBlameEdge b;
      b.idler = e.get("idler").as_int();
      b.level = e.get("idler_level").as_int(-1);
      b.holder = e.get("holder").as_int();
      b.holder_phase = e.get("holder_phase").as_string();
      b.idle_us = e.get("idle_us").as_double();
      rec.blame.push_back(std::move(b));
    }
  }
  return rec;
}

bool record_from_artifact(const ReportInput& input, RunRecord* out,
                          std::string* error) {
  const std::string& schema = input.root.get("schema").as_string();
  if (schema == "pdt-bench-v1") {
    *out = record_from_envelopes({input});
    return true;
  }
  if (schema == "pdt-diff-baseline-v1") {
    *out = RunRecord{};
    return parse_baseline(input.root, &out->virt, error);
  }
  if (schema == "pdt-host-baseline-v1") {
    *out = RunRecord{};
    std::vector<HostEntry> entries;
    if (!parse_host_baseline(input.root, &entries, error)) return false;
    out->host.reserve(entries.size());
    for (HostEntry& e : entries) {
      TrendHostTuple t;
      t.entry = std::move(e);
      out->host.push_back(std::move(t));
    }
    return true;
  }
  if (error != nullptr) {
    *error = "cannot ingest schema \"" + schema +
             "\" (want pdt-bench-v1, pdt-diff-baseline-v1, or "
             "pdt-host-baseline-v1)";
  }
  return false;
}

// -------------------------------------------------------------- analysis --

namespace {

// 1.4826 scales a MAD to the sigma it estimates under normal noise (the
// same constant pdt-diff --host uses, so the two gates agree).
constexpr double kMadToSigma = 1.4826;

/// One tuple's time series across the registry, oldest first.
struct Series {
  std::string name;
  bool is_host = false;
  std::vector<std::int64_t> seqs;
  std::vector<double> values;   ///< time_us (virtual) or median_ns (host)
  std::vector<double> mads;     ///< per-run mad_ns (host only; else 0)
};

/// Verdict of one rolling changepoint test at series position `pos`
/// (comparing values[pos] against the trailing `window` earlier points).
struct Verdict {
  bool tested = false;     ///< false when pos has no earlier points
  bool regression = false;
  bool improved = false;
  double base = 0.0;       ///< trailing-window median
  double band = 0.0;       ///< allowed |delta| around base
};

Verdict test_at(const Series& s, std::size_t pos, const TrendOptions& opt) {
  Verdict v;
  if (pos == 0) return v;
  const std::size_t lo =
      pos > static_cast<std::size_t>(opt.window)
          ? pos - static_cast<std::size_t>(opt.window)
          : 0;
  std::vector<double> win(s.values.begin() + static_cast<std::ptrdiff_t>(lo),
                          s.values.begin() + static_cast<std::ptrdiff_t>(pos));
  v.tested = true;
  v.base = median_of(win);
  if (s.is_host) {
    // Same band semantics as pdt-diff --host (DESIGN.md section 9), with
    // the across-run spread of the window's medians standing in for the
    // baseline's within-run MAD.
    v.band = std::max(opt.tol * v.base,
                      opt.mad_k * kMadToSigma * (mad_of(win) + s.mads[pos]));
  } else {
    // The virtual clock is deterministic: a plain relative tolerance.
    v.band = opt.vtol * v.base;
  }
  const double delta = s.values[pos] - v.base;
  if (std::fabs(delta) > v.band) {
    (delta > 0.0 ? v.regression : v.improved) = true;
  }
  return v;
}

/// Collect every tuple's series across the registry (virtual tuples
/// first, then host tuples; first-appearance order within each group).
std::vector<Series> collect_series(const std::vector<RunRecord>& runs) {
  std::vector<Series> out;
  std::vector<DiffEntry> vkeys;
  std::vector<HostEntry> hkeys;
  for (const RunRecord& rec : runs) {
    for (const DiffEntry& e : rec.virt) {
      std::size_t i = 0;
      for (; i < vkeys.size(); ++i) {
        if (same_virt(vkeys[i], e)) break;
      }
      if (i == vkeys.size()) {
        vkeys.push_back(e);
        Series s;
        s.name = virt_name(e);
        out.push_back(std::move(s));
      }
      out[i].seqs.push_back(rec.seq);
      out[i].values.push_back(e.time_us);
      out[i].mads.push_back(0.0);
    }
  }
  const std::size_t host_base = out.size();
  for (const RunRecord& rec : runs) {
    for (const TrendHostTuple& t : rec.host) {
      std::size_t i = 0;
      for (; i < hkeys.size(); ++i) {
        if (same_host(hkeys[i], t.entry)) break;
      }
      if (i == hkeys.size()) {
        hkeys.push_back(t.entry);
        Series s;
        s.name = host_name(t.entry);
        s.is_host = true;
        out.push_back(std::move(s));
      }
      out[host_base + i].seqs.push_back(rec.seq);
      out[host_base + i].values.push_back(t.entry.median_ns);
      out[host_base + i].mads.push_back(t.entry.mad_ns);
    }
  }
  // Fault-tolerance tuples: two virtual series per (formulation, P,
  // scenario) key — total time and resilience overhead (checkpoint +
  // detect + recovery + retry + durable + resume I/O). The overhead
  // series starts at 0 for clean scenarios, so retry cost appearing
  // where there was none is flagged even when total time barely moves.
  const std::size_t ft_base = out.size();
  std::vector<TrendFtTuple> fkeys;
  for (const RunRecord& rec : runs) {
    for (const TrendFtTuple& f : rec.ft) {
      std::size_t i = 0;
      for (; i < fkeys.size(); ++i) {
        if (same_ft(fkeys[i], f)) break;
      }
      if (i == fkeys.size()) {
        fkeys.push_back(f);
        Series time_s;
        time_s.name = ft_name(f) + " [time]";
        out.push_back(std::move(time_s));
        Series ovhd_s;
        ovhd_s.name = ft_name(f) + " [overhead]";
        out.push_back(std::move(ovhd_s));
      }
      out[ft_base + 2 * i].seqs.push_back(rec.seq);
      out[ft_base + 2 * i].values.push_back(f.time_us);
      out[ft_base + 2 * i].mads.push_back(0.0);
      out[ft_base + 2 * i + 1].seqs.push_back(rec.seq);
      out[ft_base + 2 * i + 1].values.push_back(f.overhead_us);
      out[ft_base + 2 * i + 1].mads.push_back(0.0);
    }
  }
  return out;
}

/// Per-(phase, level) host-cell deltas between two records' instances of
/// one host tuple, ranked by |delta| descending (ties: registry order).
struct CellDelta {
  const TrendCell* before;  ///< null when the cell is new
  const TrendCell* after;   ///< null when the cell vanished
  double delta_ns = 0.0;
};

std::vector<CellDelta> cell_deltas(const TrendHostTuple& before,
                                   const TrendHostTuple& after) {
  std::vector<CellDelta> out;
  for (const TrendCell& b : before.cells) {
    CellDelta d;
    d.before = &b;
    d.after = nullptr;
    for (const TrendCell& a : after.cells) {
      if (a.phase == b.phase && a.level == b.level) {
        d.after = &a;
        break;
      }
    }
    d.delta_ns = (d.after != nullptr ? d.after->host_ns : 0.0) - b.host_ns;
    out.push_back(d);
  }
  for (const TrendCell& a : after.cells) {
    bool seen = false;
    for (const TrendCell& b : before.cells) {
      if (a.phase == b.phase && a.level == b.level) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back({nullptr, &a, a.host_ns});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CellDelta& x, const CellDelta& y) {
                     return std::fabs(x.delta_ns) > std::fabs(y.delta_ns);
                   });
  return out;
}

std::string cell_label(const CellDelta& d) {
  const TrendCell* c = d.after != nullptr ? d.after : d.before;
  return c->phase + (c->level >= 0 ? " L" + std::to_string(c->level) : "");
}

/// The most recent record before `runs.back()` carrying `key`, or null.
const TrendHostTuple* previous_host(const std::vector<RunRecord>& runs,
                                    const HostEntry& key,
                                    const RunRecord** rec_out) {
  for (std::size_t r = runs.size() - 1; r-- > 0;) {
    for (const TrendHostTuple& t : runs[r].host) {
      if (same_host(t.entry, key)) {
        if (rec_out != nullptr) *rec_out = &runs[r];
        return &t;
      }
    }
  }
  return nullptr;
}

void write_explain_cells(std::ostream& os, const TrendHostTuple& before,
                         const TrendHostTuple& after, double tuple_delta,
                         int top_cells) {
  const std::vector<CellDelta> deltas = cell_deltas(before, after);
  const std::size_t keep =
      std::min(deltas.size(), static_cast<std::size_t>(top_cells));
  for (std::size_t i = 0; i < keep; ++i) {
    const CellDelta& d = deltas[i];
    const double share =
        tuple_delta != 0.0 ? 100.0 * d.delta_ns / tuple_delta : 0.0;
    os << "    " << cell_label(d) << " — "
       << (d.before != nullptr ? fmt_ms(d.before->host_ns) : std::string("-"))
       << " -> "
       << (d.after != nullptr ? fmt_ms(d.after->host_ns) : std::string("-"))
       << " ms (" << (d.delta_ns >= 0.0 ? "+" : "") << fmt_ms(d.delta_ns)
       << " ms, " << fmt(share, 1) << "% of the move)\n";
  }
  if (deltas.size() > keep) {
    os << "    ... " << deltas.size() - keep << " more cells\n";
  }
}

}  // namespace

int run_trend_check(const std::vector<RunRecord>& runs,
                    const TrendOptions& opt, std::ostream& os,
                    std::string* doc) {
  std::ostringstream d;
  d << "{\n  \"schema\": \"pdt-trend-v1\",\n  \"runs\": " << runs.size()
    << ",\n  \"window\": " << opt.window
    << ",\n  \"tol\": " << json_double_exact(opt.tol)
    << ",\n  \"mad_k\": " << json_double_exact(opt.mad_k)
    << ",\n  \"vtol\": " << json_double_exact(opt.vtol)
    << ",\n  \"meta\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    d << (i == 0 ? "" : ",") << "\n    {\"seq\": " << r.seq
      << ", \"timestamp\": \"" << json_escaped(r.timestamp)
      << "\", \"label\": \"" << json_escaped(r.label) << "\", \"git_sha\": \""
      << json_escaped(r.fingerprint.get("git_sha").as_string())
      << "\", \"git_dirty\": "
      << (r.fingerprint.get("git_dirty").as_bool() ? "true" : "false") << "}";
  }
  d << "\n  ],\n  \"tuples\": [";

  int regressions = 0;
  const bool gated = runs.size() >= 2;
  os << "trend: " << runs.size() << " run" << (runs.size() == 1 ? "" : "s")
     << " in registry (window " << opt.window << ", host floor "
     << fmt(100.0 * opt.tol, 1) << "% / mad_k " << fmt(opt.mad_k, 1)
     << ", virtual tol " << fmt(100.0 * opt.vtol, 2) << "%)\n";
  if (!gated) {
    os << "OK: fewer than two runs — no history to gate\n";
  }

  const std::vector<Series> series = collect_series(runs);
  const std::int64_t latest_seq = runs.empty() ? 0 : runs.back().seq;
  bool first_tuple = true;
  for (const Series& s : series) {
    const bool in_latest = !s.seqs.empty() && s.seqs.back() == latest_seq;
    // Rolling test at every position for the changepoint markers; the
    // last position doubles as the gate verdict.
    std::vector<int> marks(s.values.size(), 0);  // +1 up, -1 down
    Verdict last;
    for (std::size_t i = 1; i < s.values.size(); ++i) {
      const Verdict v = test_at(s, i, opt);
      if (v.regression) marks[i] = 1;
      if (v.improved) marks[i] = -1;
      if (i + 1 == s.values.size()) last = v;
    }

    std::string verdict = "ok";
    if (!gated) {
      verdict = "ok";
    } else if (!in_latest) {
      verdict = "missing";
    } else if (last.tested && last.regression) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (last.tested && last.improved) {
      verdict = "IMPROVED";
    }

    if (gated) {
      const double latest = s.values.back();
      const char* tagc = verdict == "REGRESSION" ? "FAIL    "
                         : verdict == "IMPROVED" ? "IMPROVED"
                         : verdict == "missing"  ? "MISSING "
                                                 : "ok      ";
      os << tagc << (s.is_host ? "[host] " : "[virt] ") << s.name;
      if (verdict == "missing") {
        // Completeness is pdt-diff's job; the trend gate only warns so a
        // narrowed harness run cannot hard-fail history it never touched.
        os << " — absent from latest run (warning)\n";
      } else if (last.tested) {
        const double delta = latest - last.base;
        os << " — " << (s.is_host ? fmt_ms(last.base) : fmt(last.base, 1))
           << " -> " << (s.is_host ? fmt_ms(latest) : fmt(latest, 1))
           << (s.is_host ? " ms" : " us") << " ("
           << (delta >= 0.0 ? "+" : "")
           << fmt(last.base != 0.0 ? 100.0 * delta / last.base : 0.0, 1)
           << "%), band ±"
           << (s.is_host ? fmt_ms(last.band) : fmt(last.band, 1))
           << (s.is_host ? " ms" : " us") << ", n=" << s.values.size()
           << "\n";
      } else {
        os << " — first appearance (n=1)\n";
      }
    }

    d << (first_tuple ? "" : ",") << "\n    {\"name\": \""
      << json_escaped(s.name) << "\", \"kind\": \""
      << (s.is_host ? "host" : "virtual") << "\", \"verdict\": \"" << verdict
      << "\", \"seqs\": [";
    first_tuple = false;
    for (std::size_t i = 0; i < s.seqs.size(); ++i) {
      d << (i == 0 ? "" : ", ") << s.seqs[i];
    }
    d << "], \"values\": [";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      d << (i == 0 ? "" : ", ") << json_double_exact(s.values[i]);
    }
    d << "], \"changepoints\": [";
    for (std::size_t i = 0, n = 0; i < marks.size(); ++i) {
      if (marks[i] == 0) continue;
      d << (n++ == 0 ? "" : ", ") << "{\"seq\": " << s.seqs[i]
        << ", \"direction\": \"" << (marks[i] > 0 ? "up" : "down") << "\"}";
    }
    d << "]";
    if (last.tested && in_latest) {
      d << ", \"base\": " << json_double_exact(last.base)
        << ", \"latest\": " << json_double_exact(s.values.back())
        << ", \"band\": " << json_double_exact(last.band);
    }
    // Explain summary for host tuples that moved: which (phase, level)
    // cells account for the delta against the previous sighting.
    if (s.is_host && in_latest &&
        (verdict == "REGRESSION" || verdict == "IMPROVED")) {
      HostEntry key;
      const TrendHostTuple* after = nullptr;
      for (const TrendHostTuple& t : runs.back().host) {
        if (host_name(t.entry) == s.name) {
          after = &t;
          key = t.entry;
          break;
        }
      }
      const TrendHostTuple* before =
          after != nullptr ? previous_host(runs, key, nullptr) : nullptr;
      if (before != nullptr && !before->cells.empty() &&
          !after->cells.empty()) {
        const double tuple_delta =
            after->entry.median_ns - before->entry.median_ns;
        const std::vector<CellDelta> deltas = cell_deltas(*before, *after);
        const std::size_t keep = std::min(
            deltas.size(), static_cast<std::size_t>(opt.top_cells));
        d << ", \"explain\": [";
        for (std::size_t i = 0; i < keep; ++i) {
          const CellDelta& cd = deltas[i];
          const TrendCell* c = cd.after != nullptr ? cd.after : cd.before;
          d << (i == 0 ? "" : ", ") << "{\"phase\": \""
            << json_escaped(c->phase) << "\", \"level\": " << c->level
            << ", \"before_ns\": "
            << json_double_exact(cd.before != nullptr ? cd.before->host_ns
                                                      : 0.0)
            << ", \"after_ns\": "
            << json_double_exact(cd.after != nullptr ? cd.after->host_ns
                                                     : 0.0)
            << ", \"delta_ns\": " << json_double_exact(cd.delta_ns)
            << ", \"share_pct\": "
            << json_double_exact(tuple_delta != 0.0
                                     ? 100.0 * cd.delta_ns / tuple_delta
                                     : 0.0)
            << "}";
        }
        d << "]";
      }
    }
    d << "}";
  }
  d << "\n  ],\n  \"models\": [";

  // Model drift gate: the digest is deterministic, so a changed digest
  // for a previously-sighted (harness, tag, formulation, P) key is a
  // regression — the classifier itself moved, not just its cost.
  std::vector<TrendModelTuple> mkeys;
  for (const RunRecord& rec : runs) {
    for (const TrendModelTuple& m : rec.model) {
      bool seen = false;
      for (const TrendModelTuple& k : mkeys) seen = seen || same_model(k, m);
      if (!seen) mkeys.push_back(m);
    }
  }
  bool first_model = true;
  for (const TrendModelTuple& key : mkeys) {
    const TrendModelTuple* latest = nullptr;
    for (const TrendModelTuple& m : runs.back().model) {
      if (same_model(m, key)) latest = &m;
    }
    const TrendModelTuple* prev = nullptr;
    for (std::size_t r = runs.size() - 1; r-- > 0 && prev == nullptr;) {
      for (const TrendModelTuple& m : runs[r].model) {
        if (same_model(m, key)) prev = &m;
      }
    }
    std::string verdict = "ok";
    if (!gated) {
      verdict = "ok";
    } else if (latest == nullptr) {
      verdict = "missing";
    } else if (prev == nullptr) {
      verdict = "new";
    } else if (latest->digest != prev->digest) {
      verdict = "REGRESSION";
      ++regressions;
    }
    if (gated) {
      const char* tagc = verdict == "REGRESSION" ? "FAIL    "
                         : verdict == "missing"  ? "MISSING "
                                                 : "ok      ";
      os << tagc << "[model] " << model_name(key);
      if (verdict == "missing") {
        os << " — absent from latest run (warning)\n";
      } else if (verdict == "new") {
        os << " — first appearance, digest " << latest->digest.substr(0, 12)
           << "\n";
      } else if (verdict == "REGRESSION") {
        os << " — digest " << prev->digest.substr(0, 12) << " -> "
           << latest->digest.substr(0, 12) << " (accuracy "
           << fmt(prev->accuracy, 4) << " -> " << fmt(latest->accuracy, 4)
           << ", " << latest->nodes << " nodes vs " << prev->nodes << ")\n";
      } else {
        os << " — digest " << latest->digest.substr(0, 12) << " unchanged, "
           << "accuracy " << fmt(latest->accuracy, 4) << "\n";
      }
    }
    const TrendModelTuple* shown = latest != nullptr ? latest : prev;
    d << (first_model ? "" : ",") << "\n    {\"name\": \""
      << json_escaped(model_name(key)) << "\", \"verdict\": \"" << verdict
      << "\", \"digest\": \"" << json_escaped(shown->digest)
      << "\", \"accuracy\": " << json_double_exact(shown->accuracy)
      << ", \"nodes\": " << shown->nodes << ", \"leaves\": " << shown->leaves
      << ", \"depth\": " << shown->depth;
    if (prev != nullptr && latest != nullptr) {
      d << ", \"prev_digest\": \"" << json_escaped(prev->digest)
        << "\", \"prev_accuracy\": " << json_double_exact(prev->accuracy);
    }
    d << "}";
    first_model = false;
  }
  d << "\n  ],\n  \"ft\": [";

  // Recovery-identity gate: a resilience scenario whose latest row grew
  // a tree different from its fault-free baseline is an unconditional
  // regression — the cost series above only watch how much recovery
  // costs, this watches whether it is still correct.
  bool first_ft = true;
  if (!runs.empty()) {
    for (const TrendFtTuple& f : runs.back().ft) {
      std::string verdict = "ok";
      if (gated && !f.tree_identical) {
        verdict = "REGRESSION";
        ++regressions;
        os << "FAIL    [ft]   " << ft_name(f)
           << " — tree diverged from the fault-free baseline\n";
      }
      d << (first_ft ? "" : ",") << "\n    {\"name\": \""
        << json_escaped(ft_name(f)) << "\", \"verdict\": \"" << verdict
        << "\", \"tree_identical\": " << (f.tree_identical ? "true" : "false")
        << ", \"overhead_us\": " << json_double_exact(f.overhead_us)
        << ", \"retry_us\": " << json_double_exact(f.retry_us)
        << ", \"retries\": " << f.retries
        << ", \"resume_records\": " << f.resume_records << "}";
      first_ft = false;
    }
  }
  d << "\n  ]\n}\n";
  if (doc != nullptr) *doc = d.str();

  if (gated) {
    os << (regressions == 0 ? "OK" : "REGRESSION") << ": " << regressions
       << " tuple" << (regressions == 1 ? "" : "s")
       << " regressed against the trailing window\n";
  }
  return regressions;
}

bool run_trend_explain(const std::vector<RunRecord>& runs,
                       const std::string& tuple_filter,
                       const TrendOptions& opt, std::ostream& os) {
  if (runs.size() < 2) {
    os << "explain: fewer than two runs — nothing to compare\n";
    return false;
  }
  const RunRecord& latest = runs.back();

  // Which host tuples to explain: the filter substring when given,
  // otherwise every tuple the rolling check flags as moved.
  std::vector<const TrendHostTuple*> targets;
  if (!tuple_filter.empty()) {
    for (const TrendHostTuple& t : latest.host) {
      if (host_name(t.entry).find(tuple_filter) != std::string::npos) {
        targets.push_back(&t);
      }
    }
  } else {
    const std::vector<Series> series = collect_series(runs);
    for (const Series& s : series) {
      if (!s.is_host || s.seqs.empty() || s.seqs.back() != latest.seq) {
        continue;
      }
      const Verdict v = test_at(s, s.values.size() - 1, opt);
      if (!v.regression && !v.improved) continue;
      for (const TrendHostTuple& t : latest.host) {
        if (host_name(t.entry) == s.name) {
          targets.push_back(&t);
          break;
        }
      }
    }
  }
  if (targets.empty()) {
    os << "explain: no host tuple "
       << (tuple_filter.empty() ? "moved past the band"
                                : "matches \"" + tuple_filter + "\"")
       << "\n";
    return false;
  }

  bool any = false;
  for (const TrendHostTuple* after : targets) {
    const RunRecord* before_rec = nullptr;
    const TrendHostTuple* before =
        previous_host(runs, after->entry, &before_rec);
    const std::string name = host_name(after->entry);
    if (before == nullptr) {
      os << name << ": first appearance in run " << latest.seq
         << " — no earlier record to explain against\n";
      continue;
    }
    any = true;
    const double delta = after->entry.median_ns - before->entry.median_ns;
    os << name << ": run " << before_rec->seq << " -> " << latest.seq << ", "
       << fmt_ms(before->entry.median_ns) << " -> "
       << fmt_ms(after->entry.median_ns) << " ms ("
       << (delta >= 0.0 ? "+" : "") << fmt_ms(delta) << " ms)\n";
    const auto sha = [](const RunRecord& r) {
      const std::string& s = r.fingerprint.get("git_sha").as_string();
      return s.empty() ? std::string("unknown") : s;
    };
    os << "  build: " << sha(*before_rec)
       << (before_rec->fingerprint.get("git_dirty").as_bool() ? "*" : "")
       << " -> " << sha(latest)
       << (latest.fingerprint.get("git_dirty").as_bool() ? "*" : "") << "\n";

    // Environment attribution: a perf move that coincides with a
    // core-count or PDT_THREADS change is a machine story, not a code
    // story. Printed only when the fingerprints actually differ so
    // explanations on a stable machine stay unchanged.
    const std::int64_t cores_before =
        before_rec->fingerprint.get("cores").as_int();
    const std::int64_t cores_after = latest.fingerprint.get("cores").as_int();
    if (cores_before != cores_after && cores_before > 0 && cores_after > 0) {
      os << "  cores: " << cores_before << " -> " << cores_after
         << " — hardware concurrency changed between the runs\n";
    }
    const std::string& thr_before =
        before_rec->fingerprint.get("pdt_threads").as_string();
    const std::string& thr_after =
        latest.fingerprint.get("pdt_threads").as_string();
    if (thr_before != thr_after) {
      os << "  PDT_THREADS: "
         << (thr_before.empty() ? "(unset)" : thr_before) << " -> "
         << (thr_after.empty() ? "(unset)" : thr_after)
         << " — requested thread count changed between the runs\n";
    }

    // Concurrency-telemetry deltas for this tuple when both records
    // carry one: new sample drops or lock contention on the latest side
    // point at the observability runtime, not the algorithm.
    const TrendThreadsTuple* t_before = nullptr;
    const TrendThreadsTuple* t_after = nullptr;
    for (const TrendThreadsTuple& t : before_rec->threads) {
      if (t.harness == after->entry.harness && t.tag == after->entry.tag &&
          t.formulation == after->entry.formulation &&
          t.procs == after->entry.procs) {
        t_before = &t;
      }
    }
    for (const TrendThreadsTuple& t : latest.threads) {
      if (t.harness == after->entry.harness && t.tag == after->entry.tag &&
          t.formulation == after->entry.formulation &&
          t.procs == after->entry.procs) {
        t_after = &t;
      }
    }
    if (t_after != nullptr &&
        (t_before == nullptr || t_before->peak_active != t_after->peak_active ||
         t_before->dropped != t_after->dropped ||
         t_before->contended != t_after->contended)) {
      os << "  threads: peak_active "
         << (t_before != nullptr ? std::to_string(t_before->peak_active)
                                 : std::string("-"))
         << " -> " << t_after->peak_active << ", dropped "
         << (t_before != nullptr ? std::to_string(t_before->dropped)
                                 : std::string("-"))
         << " -> " << t_after->dropped << ", contended "
         << (t_before != nullptr ? std::to_string(t_before->contended)
                                 : std::string("-"))
         << " -> " << t_after->contended << " (wait "
         << fmt_ms(static_cast<double>(t_after->wait_ns)) << " ms)\n";
    }
    if (before->cells.empty() || after->cells.empty()) {
      os << "  (no per-phase cells recorded on "
         << (before->cells.empty() ? "the earlier" : "the latest")
         << " side — re-run with host profiling to attribute)\n";
      continue;
    }
    os << "  top cells by |delta|:\n";
    write_explain_cells(os, *before, *after, delta, opt.top_cells);

    // Blame-edge deltas when both records carry replay edges: which
    // wait-for relationships gained idle time.
    if (!before_rec->blame.empty() && !latest.blame.empty()) {
      struct EdgeDelta {
        const TrendBlameEdge* e;
        double delta_us;
      };
      std::vector<EdgeDelta> moved;
      for (const TrendBlameEdge& a : latest.blame) {
        double prior = 0.0;
        for (const TrendBlameEdge& b : before_rec->blame) {
          if (b.idler == a.idler && b.level == a.level &&
              b.holder == a.holder && b.holder_phase == a.holder_phase) {
            prior = b.idle_us;
            break;
          }
        }
        moved.push_back({&a, a.idle_us - prior});
      }
      std::stable_sort(moved.begin(), moved.end(),
                       [](const EdgeDelta& x, const EdgeDelta& y) {
                         return std::fabs(x.delta_us) > std::fabs(y.delta_us);
                       });
      const std::size_t keep = std::min(
          moved.size(), static_cast<std::size_t>(opt.top_cells));
      bool header = false;
      for (std::size_t i = 0; i < keep; ++i) {
        if (moved[i].delta_us == 0.0) continue;
        if (!header) {
          os << "  blame-edge deltas:\n";
          header = true;
        }
        const TrendBlameEdge& e = *moved[i].e;
        os << "    rank " << e.idler << " L" << e.level << " waiting on rank "
           << e.holder << " (" << e.holder_phase << ") — "
           << (moved[i].delta_us >= 0.0 ? "+" : "")
           << fmt(moved[i].delta_us, 1) << " us idle\n";
      }
    }
  }
  return any;
}

void run_trend_list(const std::vector<RunRecord>& runs, std::ostream& os) {
  os << "registry: " << runs.size() << " run"
     << (runs.size() == 1 ? "" : "s") << "\n";
  for (const RunRecord& r : runs) {
    const std::string& sha = r.fingerprint.get("git_sha").as_string();
    os << "  #" << r.seq << "  "
       << (r.timestamp.empty() ? "-" : r.timestamp) << "  "
       << (sha.empty() ? "unknown" : sha)
       << (r.fingerprint.get("git_dirty").as_bool() ? "*" : "") << "  "
       << r.virt.size() << " virtual, " << r.host.size() << " host, "
       << r.model.size() << " model, " << r.ft.size() << " ft, "
       << r.blame.size() << " blame, " << r.threads.size() << " threads"
       << (r.label.empty() ? "" : "  [" + r.label + "]") << "\n";
  }
}

}  // namespace pdt::tools
