// pdt-trend — cross-run performance history over the pdt-runs-v1
// registry (bench/history/runs.jsonl by default).
//
//   pdt-trend append  [opts] <bench.json>...   fold one run's envelopes
//                                              (repeats + optional replay
//                                              reports) into ONE record
//   pdt-trend ingest  [opts] <artifact>...     one record PER artifact
//                                              (envelope or committed
//                                              pdt-diff/host baseline)
//   pdt-trend list    [opts]                   show the registry
//   pdt-trend check   [opts]                   changepoint/drift gate
//   pdt-trend explain [opts]                   attribute a moved tuple
//
// The tool never reads a clock: timestamps enter via --stamp, so every
// output is a pure function of the inputs (the suite's determinism
// contract). The registry is "append-only" in spirit — append/ingest
// rewrite the whole file atomically with the new records at the end, so
// a crash never leaves a torn line.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "trend/trend.hpp"

namespace {

constexpr pdt::tools::CliSpec kSpec = {
    "pdt-trend",
    "usage: pdt-trend append  [--registry F] [--stamp TS] [--label L] "
    "<bench.json>...\n"
    "       pdt-trend ingest  [--registry F] [--stamp TS] [--label L] "
    "<artifact.json>...\n"
    "       pdt-trend list    [--registry F]\n"
    "       pdt-trend check   [--registry F] [--window N] [--tol T]\n"
    "                         [--mad-k K] [--vtol T] [--top N] [-o out.json]\n"
    "       pdt-trend explain [--registry F] [--tuple SUBSTR] [--top N]\n"
    "\n"
    "Maintain and analyze the cross-run perf registry (pdt-runs-v1, one\n"
    "JSONL record per harness run, each stamped with the producing\n"
    "build's fingerprint).\n"
    "\n"
    "append folds all inputs into one record: virtual tuples from their\n"
    "speedup_series, host tuples collapsed to median-of-k + MAD across\n"
    "the inputs (one envelope per repeat) with per-(phase, level) cells,\n"
    "blame edges from pdt-replay-v1 inputs. ingest makes one record per\n"
    "input instead (bootstrap from committed baselines).\n"
    "\n"
    "check gates the latest record against the trailing window of each\n"
    "tuple's history. Host tuples use the pdt-diff --host band\n"
    "  band = max(tol * win_median, mad_k * 1.4826 * (win_mad + cur_mad))\n"
    "(see `pdt-diff --host --help` / DESIGN.md section 9); virtual\n"
    "tuples use the plain relative tolerance --vtol. Slower past the\n"
    "band = regression (exit 1); faster = improvement (reported, exit\n"
    "0); a tuple absent from the latest run is a warning, not a\n"
    "failure. With -o, writes a pdt-trend-v1 report (series,\n"
    "changepoints, explain summaries) for pdt-report.\n"
    "\n"
    "  --registry F   registry path (default bench/history/runs.jsonl)\n"
    "  --stamp TS     timestamp stored in new records (default empty;\n"
    "                 the tool never reads a clock)\n"
    "  --label L      free-form label for new records (e.g. CI run id)\n"
    "  --window N     trailing runs per baseline window (default 5)\n"
    "  --tol T        host band relative floor (default 0.5)\n"
    "  --mad-k K      host sigmas of jitter to forgive (default 5)\n"
    "  --vtol T       virtual relative tolerance (default 0.02)\n"
    "  --top N        cells/edges ranked per explanation (default 5)\n"
    "  --tuple S      explain only tuples whose name contains S\n"
    "  -o out.json    write the pdt-trend-v1 report to out.json (atomic)\n"
    "  -h, --help     show this help\n"
    "  --version      print the tool-suite version\n",
};

/// Read the registry at `path`; a missing file is an empty registry (the
/// bootstrap case), any other read or parse problem is fatal.
bool load_registry(const std::string& path,
                   std::vector<pdt::tools::RunRecord>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out->clear();
    return true;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  if (!pdt::tools::parse_registry(ss.str(), out, &error)) {
    std::fprintf(stderr, "pdt-trend: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdt::tools;
  if (argc < 2) return usage(kSpec);

  const std::string_view cmd = argv[1];
  {
    int code = kExitOk;
    if (standard_flag(kSpec, cmd, &code)) return code;
  }
  if (cmd != "append" && cmd != "ingest" && cmd != "list" && cmd != "check" &&
      cmd != "explain") {
    std::fprintf(stderr, "pdt-trend: unknown command '%.*s'\n",
                 static_cast<int>(cmd.size()), cmd.data());
    return usage(kSpec);
  }

  std::string registry_path = "bench/history/runs.jsonl";
  std::string stamp;
  std::string label;
  std::string tuple_filter;
  std::string out_path;
  TrendOptions opt;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int code = kExitOk;
    if (standard_flag(kSpec, arg, &code)) return code;
    const auto num_flag = [&](double* dst, double min) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *dst = std::strtod(argv[++i], &end);
      return end != argv[i] && *end == '\0' && *dst >= min;
    };
    if (arg == "--registry") {
      if (i + 1 >= argc) return usage(kSpec);
      registry_path = argv[++i];
    } else if (arg == "--stamp") {
      if (i + 1 >= argc) return usage(kSpec);
      stamp = argv[++i];
    } else if (arg == "--label") {
      if (i + 1 >= argc) return usage(kSpec);
      label = argv[++i];
    } else if (arg == "--tuple") {
      if (i + 1 >= argc) return usage(kSpec);
      tuple_filter = argv[++i];
    } else if (arg == "-o") {
      if (i + 1 >= argc) return usage(kSpec);
      out_path = argv[++i];
    } else if (arg == "--window") {
      double w = 0.0;
      if (!num_flag(&w, 1.0)) return usage(kSpec);
      opt.window = static_cast<int>(w);
    } else if (arg == "--top") {
      double t = 0.0;
      if (!num_flag(&t, 0.0)) return usage(kSpec);
      opt.top_cells = static_cast<int>(t);
    } else if (arg == "--tol") {
      if (!num_flag(&opt.tol, 0.0)) return usage(kSpec);
    } else if (arg == "--mad-k") {
      if (!num_flag(&opt.mad_k, 0.0)) return usage(kSpec);
    } else if (arg == "--vtol") {
      if (!num_flag(&opt.vtol, 0.0)) return usage(kSpec);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(kSpec);
    } else {
      files.emplace_back(arg);
    }
  }

  std::vector<RunRecord> runs;
  if (!load_registry(registry_path, &runs)) return kExitUsage;

  if (cmd == "append" || cmd == "ingest") {
    if (files.empty()) return usage(kSpec);
    std::vector<ReportInput> inputs;
    for (const std::string& path : files) {
      ReportInput in;
      in.name = path;
      if (!load_json_file(kSpec, path, &in.root)) return kExitUsage;
      inputs.push_back(std::move(in));
    }
    std::int64_t next_seq = runs.empty() ? 1 : runs.back().seq + 1;
    std::size_t added = 0;
    if (cmd == "append") {
      RunRecord rec = record_from_envelopes(inputs);
      if (rec.virt.empty() && rec.host.empty() && rec.model.empty() &&
          rec.ft.empty()) {
        std::fprintf(stderr,
                     "pdt-trend: no speedup_series, host, model or ft tuples "
                     "found in the inputs\n");
        return kExitFail;
      }
      rec.seq = next_seq;
      rec.timestamp = stamp;
      rec.label = label;
      runs.push_back(std::move(rec));
      added = 1;
    } else {
      for (const ReportInput& in : inputs) {
        RunRecord rec;
        std::string error;
        if (!record_from_artifact(in, &rec, &error)) {
          std::fprintf(stderr, "pdt-trend: %s: %s\n", in.name.c_str(),
                       error.c_str());
          return kExitUsage;
        }
        rec.seq = next_seq++;
        rec.timestamp = stamp;
        rec.label = label;
        runs.push_back(std::move(rec));
        ++added;
      }
    }
    if (!write_file_atomic(kSpec, registry_path, registry_text(runs))) {
      return kExitFail;
    }
    std::fprintf(stderr, "pdt-trend: %s now holds %zu run(s) (+%zu)\n",
                 registry_path.c_str(), runs.size(), added);
    return kExitOk;
  }

  if (cmd == "list") {
    run_trend_list(runs, std::cout);
    return kExitOk;
  }

  if (cmd == "check") {
    std::string doc;
    const int regressions =
        run_trend_check(runs, opt, std::cout, out_path.empty() ? nullptr : &doc);
    if (!out_path.empty() &&
        !write_file_atomic(kSpec, out_path, doc)) {
      return kExitFail;
    }
    return regressions == 0 ? kExitOk : kExitFail;
  }

  // explain
  return run_trend_explain(runs, tuple_filter, opt, std::cout) ? kExitOk
                                                               : kExitFail;
}
