// pdt-replay — deterministic what-if replay of pdt-events-v1 logs.
//
//   pdt-replay --check <events.json>...
//       Re-execute each log under its recorded constants and verify
//       every per-rank virtual clock (and max_clock) bit-exactly.
//       Exit 1 on any mismatch — the replay identity gate CI runs.
//
//   pdt-replay --set t_w=0.22 <events.json>
//       What-if replay: rescale the recorded charges to the overridden
//       constants and report the resulting clocks and blame edges.
//
//   pdt-replay --sweep t_s=10:80:10,t_w=0.05:0.2:0.05 <events.json>...
//       Speedup/efficiency surface over the constant grid. A P=1 log
//       among the inputs (matched on meta.n) is the serial reference;
//       without one the work-sum of the replayed log stands in.
//
//   pdt-replay --iso --efficiency 0.8 <grid of events.json>
//       Chart the measured isoefficiency curve from a (P, N) grid of
//       logs against the analytic N = E/(1-E) * iso_c * P log2 P.
//
// Exit codes follow the suite convention in common/cli.hpp.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "replay/replay.hpp"

namespace {

constexpr pdt::tools::CliSpec kSpec = {
    "pdt-replay",
    "usage: pdt-replay [options] <events.json>...\n"
    "\n"
    "Deterministically re-execute pdt-events-v1 execution logs against\n"
    "arbitrary cost models; emit a pdt-replay-v1 JSON report.\n"
    "\n"
    "  --check            verify the identity replay reproduces every\n"
    "                     recorded per-rank clock bit-exactly (exit 1\n"
    "                     on mismatch)\n"
    "  --set KEY=V        override one cost constant (t_s, t_w, t_c,\n"
    "                     t_io, t_timeout); repeatable\n"
    "  --sweep SPEC       KEY=LO:HI:STEP[,KEY=...] what-if grid\n"
    "  --iso              measured isoefficiency curve from a (P, N)\n"
    "                     grid of logs vs the analytic model\n"
    "  --efficiency E     isoefficiency target (default 0.8)\n"
    "  --top K            blame edges to keep (default 10)\n"
    "  -o out.json        write the report to out.json\n"
    "  -h, --help         show this help\n"
    "  --version          print the tool-suite version\n",
};

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdt::tools;
  ReplayOptions opt;
  std::string out_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int code = kExitOk;
    if (standard_flag(kSpec, arg, &code)) return code;
    if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--set") {
      if (i + 1 >= argc) return usage(kSpec);
      const std::string_view kv = argv[++i];
      const std::size_t eq = kv.find('=');
      double v = 0.0;
      if (eq == std::string_view::npos ||
          !parse_double(std::string(kv.substr(eq + 1)).c_str(), &v)) {
        return usage(kSpec);
      }
      const std::string key(kv.substr(0, eq));
      ReplayCost probe;
      if (!probe.set(key, v)) {
        std::fprintf(stderr, "pdt-replay: unknown cost constant \"%s\"\n",
                     key.c_str());
        return kExitUsage;
      }
      opt.overrides.emplace_back(key, v);
    } else if (arg == "--sweep") {
      if (i + 1 >= argc) return usage(kSpec);
      std::string error;
      if (!parse_sweep_spec(argv[++i], &opt.sweep, &error)) {
        std::fprintf(stderr, "pdt-replay: %s\n", error.c_str());
        return kExitUsage;
      }
    } else if (arg == "--iso") {
      opt.iso = true;
    } else if (arg == "--efficiency") {
      if (i + 1 >= argc) return usage(kSpec);
      if (!parse_double(argv[++i], &opt.iso_efficiency) ||
          opt.iso_efficiency <= 0.0 || opt.iso_efficiency >= 1.0) {
        return usage(kSpec);
      }
    } else if (arg == "--top") {
      if (i + 1 >= argc) return usage(kSpec);
      char* end = nullptr;
      opt.blame_top = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || opt.blame_top < 0) {
        return usage(kSpec);
      }
    } else if (arg == "-o") {
      if (i + 1 >= argc) return usage(kSpec);
      out_path = argv[++i];
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) return usage(kSpec);

  std::vector<EventLog> logs;
  for (const std::string& path : files) {
    JsonValue root;
    if (!load_json_file(kSpec, path, &root)) return kExitUsage;
    EventLog log;
    log.name = path;
    std::string error;
    if (!parse_event_log(root, &log, &error)) {
      std::fprintf(stderr, "pdt-replay: %s: %s\n", path.c_str(),
                   error.c_str());
      return kExitUsage;
    }
    logs.push_back(std::move(log));
  }

  int rc;
  if (out_path.empty()) {
    rc = run_replay(logs, opt, std::cout);
  } else {
    std::ostringstream os;
    rc = run_replay(logs, opt, os);
    if (!write_file_atomic(kSpec, out_path, os.str())) return kExitFail;
  }
  if (rc != 0) {
    std::fprintf(stderr,
                 "pdt-replay: CHECK FAILED — replayed clocks diverge from "
                 "the recorded run\n");
    return kExitFail;
  }
  return kExitOk;
}
