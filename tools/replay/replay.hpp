// Offline what-if engine over pdt-events-v1 execution logs.
//
// parse_event_log() ingests the event stream obs::write_events emits;
// replay_log() deterministically re-executes it against an arbitrary
// cost model. Each recorded charge is rescaled by the ratio of the
// target constant to the recorded one (communication charges scale
// their latency and bandwidth parts independently via the recorded
// decomposition), while barriers, timeouts, and waits are recomputed
// structurally with the exact max/assignment arithmetic of the
// simulator. With target == recorded constants every ratio is exactly
// 1.0 and the IEEE identity dt * 1.0 == dt makes the replayed per-rank
// clocks — and max_clock — bit-exact copies of the recorded run. That
// identity is the contract `pdt-replay --check`, the replay tests, and
// CI enforce.
//
// On top of the single replay: --sweep grids produce speedup/efficiency
// surfaces over (t_s, t_w, ...) ranges, --iso bisects recorded-work
// scaling into measured isoefficiency curves charted against the
// analytic N = E/(1-E) * iso_c * P log2 P, and the wait-for blame
// analyzer walks every synchronization's member arrival clocks into
// per-(rank, level, holder, phase) idle-blame edges.
//
// Like the other offline tools, this library links no simulator code —
// it reads JSON only.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/json_value.hpp"

namespace pdt::tools {

/// The five cost constants of mpsim::CostModel, as plain doubles.
struct ReplayCost {
  double t_s = 0.0;
  double t_w = 0.0;
  double t_c = 0.0;
  double t_io = 0.0;
  double t_timeout = 0.0;

  /// Set a constant by name ("t_s", ...); false on unknown key.
  bool set(std::string_view key, double v);
};

/// One parsed event. Tag mirrors the compact pdt-events-v1 encoding.
struct ReplayEvent {
  enum class Tag : std::uint8_t {
    Compute,     ///< ["cp", rank, dt, phase, level]
    Io,          ///< ["io", rank, dt, phase, level]
    Comm,        ///< ["cm", rank, dt, lat, ws, wr, msgs, phase, level]
    Barrier,     ///< ["b",  what, [members]]
    Timeout,     ///< ["to", dead, [survivors]]
    Wait,        ///< ["w",  rank, until]
    WaitFor,     ///< ["wf", rank, src]
    Collective,  ///< ["g",  kind, words, dim, [members]]
    Retry,       ///< ["rt", faulty, mult, [members]]
  };

  Tag tag = Tag::Compute;
  int rank = -1;  ///< charge/wait subject; Timeout: the dead rank
  int peer = -1;  ///< WaitFor: the rank whose clock is waited on
  int phase = 0;
  int level = -1;
  double dt = 0.0;
  double lat = 0.0;  ///< Comm: t_s-proportional part of dt
  double words_sent = 0.0;
  double words_received = 0.0;
  std::uint64_t messages = 0;
  double until = 0.0;  ///< Wait: absolute target time
  double words = 0.0;  ///< Collective payload
  double mult = 1.0;   ///< Retry: backoff multiplier on t_timeout
  int dim = 0;
  std::string label;  ///< Barrier what / Collective kind
  std::vector<int> members;
};

/// One per-phase row of the optional host overlay.
struct HostPhaseRow {
  std::string phase;
  double host_ns = 0.0;
  double virtual_us = 0.0;
};

/// A fully parsed pdt-events-v1 document.
struct EventLog {
  std::string name;
  int nprocs = 0;
  ReplayCost cost;  ///< constants the run was recorded under
  std::string formulation;
  std::string workload;
  double n = 0.0;  ///< training records (meta)
  double iso_c = 0.0;
  std::vector<std::string> phases;
  std::vector<ReplayEvent> events;
  double recorded_max_clock = 0.0;
  std::vector<double> recorded_clocks;

  /// Measured wall-clock overlay, when the log carries a "host" object
  /// (a HostProfiler rode the recorded run). Lets run_replay chart
  /// predicted (virtual, re-priced) scaling against what the recording
  /// host actually spent.
  bool has_host = false;
  std::string host_clock;
  double host_total_ns = 0.0;
  std::uint64_t host_samples = 0;
  std::vector<HostPhaseRow> host_by_phase;
};

/// Parse a pdt-events-v1 root object. On failure returns false and
/// fills `*error` (unknown schema, malformed event, rank out of range).
[[nodiscard]] bool parse_event_log(const JsonValue& root, EventLog* out,
                                   std::string* error);

/// One aggregated wait-for blame edge (offline mirror of
/// obs::BlameEdge; holder_phase -1 = idle waiting out a rank failure).
struct ReplayBlameEdge {
  int idler = -1;
  int idler_level = -1;
  int holder = -1;
  int holder_phase = 0;
  double idle_us = 0.0;
  double idle_pct = 0.0;
};

struct ReplayResult {
  std::vector<double> clocks;
  double max_clock = 0.0;
  /// Sum of charged (busy) time over ranks under the target constants —
  /// the work-equivalent serial time used when no P=1 log is available.
  double busy_total = 0.0;
  /// True when a recorded constant was 0 but the target is not: those
  /// charges cannot be rescaled (ratio pinned to 1) and the what-if
  /// result under-estimates the target cost.
  bool unscalable = false;
  std::vector<ReplayBlameEdge> blame;
};

/// Re-execute `log` under `target`. With target == log.cost the clocks
/// reproduce log.recorded_clocks bit-exactly.
[[nodiscard]] ReplayResult replay_log(const EventLog& log,
                                      const ReplayCost& target,
                                      bool with_blame = false);

/// One --sweep axis: KEY=LO:HI:STEP.
struct SweepAxis {
  std::string key;
  double lo = 0.0;
  double hi = 0.0;
  double step = 0.0;
};

/// Parse "t_s=10:80:10,t_w=0.05:0.2:0.05" (also accepts KEY=V as a
/// single-point axis). False + error on malformed specs.
[[nodiscard]] bool parse_sweep_spec(std::string_view spec,
                                    std::vector<SweepAxis>* out,
                                    std::string* error);

struct ReplayOptions {
  bool check = false;  ///< identity-replay gate over every input
  std::vector<std::pair<std::string, double>> overrides;  ///< --set
  std::vector<SweepAxis> sweep;
  bool iso = false;
  double iso_efficiency = 0.8;
  int blame_top = 10;
};

/// Run the whole pipeline over the parsed logs and emit the
/// pdt-replay-v1 JSON report. Returns kExitOk, or kExitFail when the
/// --check identity gate found a mismatch.
int run_replay(const std::vector<EventLog>& logs, const ReplayOptions& opt,
               std::ostream& os);

}  // namespace pdt::tools
