#include "replay/replay.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <map>

namespace pdt::tools {

namespace {

int ceil_log2_int(int p) {
  int bits = 0;
  for (int v = 1; v < p; v <<= 1) ++bits;
  return bits;
}

/// Rescale factor for one constant. recorded == target yields exactly
/// 1.0 so the identity replay multiplies every charge by 1.0 — an IEEE
/// no-op that keeps the clocks bit-exact. A recorded 0 with a nonzero
/// target is unscalable: the log carries no term proportional to that
/// constant, so the factor stays 1 and the caller is flagged.
double ratio(double recorded, double target, bool* unscalable) {
  if (recorded == target) return 1.0;
  if (recorded == 0.0) {
    *unscalable = true;
    return 1.0;
  }
  return target / recorded;
}

}  // namespace

bool ReplayCost::set(std::string_view key, double v) {
  if (key == "t_s") {
    t_s = v;
  } else if (key == "t_w") {
    t_w = v;
  } else if (key == "t_c") {
    t_c = v;
  } else if (key == "t_io") {
    t_io = v;
  } else if (key == "t_timeout") {
    t_timeout = v;
  } else {
    return false;
  }
  return true;
}

bool parse_event_log(const JsonValue& root, EventLog* out,
                     std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (root.get("schema").as_string() != "pdt-events-v1") {
    return fail("schema is not pdt-events-v1 (got \"" +
                root.get("schema").as_string() + "\")");
  }
  out->nprocs = static_cast<int>(root.get("nprocs").as_int());
  if (out->nprocs < 1) return fail("nprocs must be >= 1");

  const JsonValue& cm = root.get("cost_model");
  out->cost.t_s = cm.get("t_s").as_double();
  out->cost.t_w = cm.get("t_w").as_double();
  out->cost.t_c = cm.get("t_c").as_double();
  out->cost.t_io = cm.get("t_io").as_double();
  out->cost.t_timeout = cm.get("t_timeout").as_double();

  const JsonValue& meta = root.get("meta");
  out->formulation = meta.get("formulation").as_string();
  out->workload = meta.get("workload").as_string();
  out->n = meta.get("n").as_double();
  out->iso_c = meta.get("iso_c").as_double();

  out->phases.clear();
  for (const JsonValue& p : root.get("phases").array()) {
    out->phases.push_back(p.as_string());
  }

  const auto rank_ok = [out](int r) { return r >= 0 && r < out->nprocs; };
  const auto parse_members = [&](const JsonValue& arr,
                                 std::vector<int>* members) {
    if (!arr.is_array()) return false;
    for (const JsonValue& m : arr.array()) {
      const int r = static_cast<int>(m.as_int(-1));
      if (!rank_ok(r)) return false;
      members->push_back(r);
    }
    return true;
  };

  out->events.clear();
  const JsonValue& events = root.get("events");
  if (!events.is_array()) return fail("events is not an array");
  out->events.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    const std::string& tag = e.at(0).as_string();
    ReplayEvent ev;
    bool ok = true;
    if (tag == "cp" || tag == "io") {
      ev.tag = tag == "cp" ? ReplayEvent::Tag::Compute : ReplayEvent::Tag::Io;
      ev.rank = static_cast<int>(e.at(1).as_int(-1));
      ev.dt = e.at(2).as_double();
      ev.phase = static_cast<int>(e.at(3).as_int());
      ev.level = static_cast<int>(e.at(4).as_int(-1));
      ok = rank_ok(ev.rank);
    } else if (tag == "cm") {
      ev.tag = ReplayEvent::Tag::Comm;
      ev.rank = static_cast<int>(e.at(1).as_int(-1));
      ev.dt = e.at(2).as_double();
      ev.lat = e.at(3).as_double();
      ev.words_sent = e.at(4).as_double();
      ev.words_received = e.at(5).as_double();
      ev.messages = static_cast<std::uint64_t>(e.at(6).as_int());
      ev.phase = static_cast<int>(e.at(7).as_int());
      ev.level = static_cast<int>(e.at(8).as_int(-1));
      ok = rank_ok(ev.rank);
    } else if (tag == "b") {
      ev.tag = ReplayEvent::Tag::Barrier;
      ev.label = e.at(1).as_string();
      ok = parse_members(e.at(2), &ev.members);
    } else if (tag == "to") {
      ev.tag = ReplayEvent::Tag::Timeout;
      ev.rank = static_cast<int>(e.at(1).as_int(-1));
      ok = rank_ok(ev.rank) && parse_members(e.at(2), &ev.members);
    } else if (tag == "w") {
      ev.tag = ReplayEvent::Tag::Wait;
      ev.rank = static_cast<int>(e.at(1).as_int(-1));
      ev.until = e.at(2).as_double();
      ok = rank_ok(ev.rank);
    } else if (tag == "wf") {
      ev.tag = ReplayEvent::Tag::WaitFor;
      ev.rank = static_cast<int>(e.at(1).as_int(-1));
      ev.peer = static_cast<int>(e.at(2).as_int(-1));
      ok = rank_ok(ev.rank) && rank_ok(ev.peer);
    } else if (tag == "g") {
      ev.tag = ReplayEvent::Tag::Collective;
      ev.label = e.at(1).as_string();
      ev.words = e.at(2).as_double();
      ev.dim = static_cast<int>(e.at(3).as_int());
      ok = parse_members(e.at(4), &ev.members);
    } else if (tag == "rt") {
      ev.tag = ReplayEvent::Tag::Retry;
      ev.rank = static_cast<int>(e.at(1).as_int(-1));
      ev.mult = e.at(2).as_double();
      ok = rank_ok(ev.rank) && parse_members(e.at(3), &ev.members);
    } else {
      return fail("event " + std::to_string(i) + ": unknown tag \"" + tag +
                  "\"");
    }
    if (!ok) {
      return fail("event " + std::to_string(i) + " (\"" + tag +
                  "\"): malformed or rank out of range");
    }
    out->events.push_back(std::move(ev));
  }

  const JsonValue& fin = root.get("final");
  out->recorded_max_clock = fin.get("max_clock_us").as_double();
  out->recorded_clocks.clear();
  for (const JsonValue& c : fin.get("clocks").array()) {
    out->recorded_clocks.push_back(c.as_double());
  }
  if (out->recorded_clocks.size() !=
      static_cast<std::size_t>(out->nprocs)) {
    return fail("final.clocks has " +
                std::to_string(out->recorded_clocks.size()) +
                " entries, expected nprocs = " + std::to_string(out->nprocs));
  }

  // Optional wall-clock overlay (logs recorded without a host profiler
  // simply lack the key).
  const JsonValue& host = root.get("host");
  out->has_host = !host.is_null();
  out->host_by_phase.clear();
  if (out->has_host) {
    out->host_clock = host.get("clock").as_string();
    out->host_total_ns = host.get("total_ns").as_double();
    out->host_samples = static_cast<std::uint64_t>(host.get("samples").as_int());
    for (const JsonValue& p : host.get("by_phase").array()) {
      HostPhaseRow row;
      row.phase = p.get("phase").as_string();
      row.host_ns = p.get("host_ns").as_double();
      row.virtual_us = p.get("virtual_us").as_double();
      out->host_by_phase.push_back(std::move(row));
    }
  }
  return true;
}

ReplayResult replay_log(const EventLog& log, const ReplayCost& target,
                        bool with_blame) {
  ReplayResult res;
  res.clocks.assign(static_cast<std::size_t>(log.nprocs), 0.0);
  std::vector<int> last_phase(static_cast<std::size_t>(log.nprocs), 0);
  std::vector<int> last_level(static_cast<std::size_t>(log.nprocs), -1);

  const double rs = ratio(log.cost.t_s, target.t_s, &res.unscalable);
  const double rw = ratio(log.cost.t_w, target.t_w, &res.unscalable);
  const double rc = ratio(log.cost.t_c, target.t_c, &res.unscalable);
  const double rio = ratio(log.cost.t_io, target.t_io, &res.unscalable);

  // (idler, idler_level, holder, holder_phase) -> accumulated idle.
  std::map<std::array<int, 4>, double> acc;
  const auto blame = [&](int idler, int holder, int holder_phase,
                         double idle) {
    if (!with_blame || idle <= 0.0) return;
    acc[{idler, last_level[static_cast<std::size_t>(idler)], holder,
         holder_phase}] += idle;
  };
  const auto clock = [&res](int r) -> double& {
    return res.clocks[static_cast<std::size_t>(r)];
  };

  for (const ReplayEvent& e : log.events) {
    switch (e.tag) {
      case ReplayEvent::Tag::Compute:
      case ReplayEvent::Tag::Io:
      case ReplayEvent::Tag::Comm: {
        double dt;
        if (e.tag == ReplayEvent::Tag::Compute) {
          dt = e.dt * rc;
        } else if (e.tag == ReplayEvent::Tag::Io) {
          dt = e.dt * rio;
        } else if (rs == rw) {
          // One factor for the whole charge. The split form below is
          // mathematically equal but NOT bit-identical (lat + (dt - lat)
          // need not round back to dt), so the identity path must take
          // this branch.
          dt = e.dt * rs;
        } else {
          dt = e.lat * rs + (e.dt - e.lat) * rw;
        }
        clock(e.rank) += dt;
        res.busy_total += dt;
        last_phase[static_cast<std::size_t>(e.rank)] = e.phase;
        last_level[static_cast<std::size_t>(e.rank)] = e.level;
        break;
      }
      case ReplayEvent::Tag::Barrier: {
        double horizon = 0.0;
        for (const int r : e.members) horizon = std::max(horizon, clock(r));
        int holder = e.members.empty() ? 0 : e.members.front();
        for (const int r : e.members) {
          if (clock(r) == horizon) {
            holder = r;
            break;
          }
        }
        for (const int r : e.members) {
          if (r != holder) {
            blame(r, holder, last_phase[static_cast<std::size_t>(holder)],
                  horizon - clock(r));
          }
          if (clock(r) < horizon) clock(r) = horizon;
        }
        break;
      }
      case ReplayEvent::Tag::Timeout: {
        double horizon = 0.0;
        for (const int r : e.members) horizon = std::max(horizon, clock(r));
        const double deadline = horizon + target.t_timeout;
        for (const int r : e.members) {
          blame(r, e.rank, -1, deadline - clock(r));
          if (clock(r) < deadline) clock(r) = deadline;
        }
        break;
      }
      case ReplayEvent::Tag::Retry: {
        // A failed collective attempt: every member waits out the
        // backed-off detection window (t_timeout * 2^attempt), blamed on
        // the faulty rank. Same arithmetic as Machine::admit_collective,
        // so the identity replay stays bit-exact through retries.
        double horizon = 0.0;
        for (const int r : e.members) horizon = std::max(horizon, clock(r));
        const double deadline = horizon + target.t_timeout * e.mult;
        for (const int r : e.members) {
          blame(r, e.rank, -1, deadline - clock(r));
          if (clock(r) < deadline) clock(r) = deadline;
        }
        break;
      }
      case ReplayEvent::Tag::Wait:
        // Absolute-time wait: the recorded target is not rescaled (no
        // remaining call site uses one on the hot paths — see DESIGN §8).
        if (clock(e.rank) < e.until) clock(e.rank) = e.until;
        break;
      case ReplayEvent::Tag::WaitFor: {
        const double t = clock(e.peer);
        blame(e.rank, e.peer, last_phase[static_cast<std::size_t>(e.peer)],
              t - clock(e.rank));
        if (clock(e.rank) < t) clock(e.rank) = t;
        break;
      }
      case ReplayEvent::Tag::Collective:
        break;  // annotation only
    }
  }

  for (const double c : res.clocks) res.max_clock = std::max(res.max_clock, c);

  if (with_blame) {
    res.blame.reserve(acc.size());
    for (const auto& [key, idle] : acc) {
      ReplayBlameEdge edge;
      edge.idler = key[0];
      edge.idler_level = key[1];
      edge.holder = key[2];
      edge.holder_phase = key[3];
      edge.idle_us = idle;
      const double total = clock(edge.idler);
      edge.idle_pct = total > 0.0 ? 100.0 * idle / total : 0.0;
      res.blame.push_back(edge);
    }
    std::sort(res.blame.begin(), res.blame.end(),
              [](const ReplayBlameEdge& a, const ReplayBlameEdge& b) {
                if (a.idle_us != b.idle_us) return a.idle_us > b.idle_us;
                if (a.idler != b.idler) return a.idler < b.idler;
                if (a.holder != b.holder) return a.holder < b.holder;
                if (a.idler_level != b.idler_level) {
                  return a.idler_level < b.idler_level;
                }
                return a.holder_phase < b.holder_phase;
              });
  }
  return res;
}

bool parse_sweep_spec(std::string_view spec, std::vector<SweepAxis>* out,
                      std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view part = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail("sweep axis \"" + std::string(part) + "\" is not KEY=...");
    }
    SweepAxis axis;
    axis.key = std::string(part.substr(0, eq));
    {
      ReplayCost probe;
      if (!probe.set(axis.key, 0.0)) {
        return fail("unknown cost constant \"" + axis.key + "\"");
      }
    }
    const std::string range(part.substr(eq + 1));
    char* end = nullptr;
    axis.lo = std::strtod(range.c_str(), &end);
    if (end == range.c_str()) {
      return fail("sweep axis \"" + axis.key + "\": bad LO value");
    }
    if (*end == '\0') {
      axis.hi = axis.lo;  // single-point axis: KEY=V
      axis.step = 1.0;
    } else {
      if (*end != ':') return fail("sweep axis \"" + axis.key + "\": expected LO:HI:STEP");
      const char* s = end + 1;
      axis.hi = std::strtod(s, &end);
      if (end == s || *end != ':') {
        return fail("sweep axis \"" + axis.key + "\": expected LO:HI:STEP");
      }
      s = end + 1;
      axis.step = std::strtod(s, &end);
      if (end == s || *end != '\0' || axis.step <= 0.0 || axis.hi < axis.lo) {
        return fail("sweep axis \"" + axis.key + "\": expected LO:HI:STEP with STEP > 0, HI >= LO");
      }
    }
    out->push_back(std::move(axis));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (out->empty()) return fail("empty sweep spec");
  return true;
}

namespace {

/// Axis sample count (inclusive of LO; HI included within fp slack).
int axis_steps(const SweepAxis& a) {
  return 1 + static_cast<int>(std::floor((a.hi - a.lo) / a.step + 1e-9));
}

void write_cost_fields(std::ostream& os, const ReplayCost& c) {
  os << "\"t_s\": " << json_double_exact(c.t_s)
     << ", \"t_w\": " << json_double_exact(c.t_w)
     << ", \"t_c\": " << json_double_exact(c.t_c)
     << ", \"t_io\": " << json_double_exact(c.t_io)
     << ", \"t_timeout\": " << json_double_exact(c.t_timeout);
}

void write_blame(std::ostream& os, const std::vector<ReplayBlameEdge>& blame,
                 const std::vector<std::string>& phases, int top,
                 const char* indent) {
  os << "[";
  const std::size_t n =
      top >= 0 ? std::min(blame.size(), static_cast<std::size_t>(top))
               : blame.size();
  for (std::size_t i = 0; i < n; ++i) {
    const ReplayBlameEdge& b = blame[i];
    const std::string phase =
        b.holder_phase < 0
            ? "(rank failure)"
            : (static_cast<std::size_t>(b.holder_phase) < phases.size()
                   ? phases[static_cast<std::size_t>(b.holder_phase)]
                   : "phase" + std::to_string(b.holder_phase));
    os << (i == 0 ? "" : ",") << "\n" << indent << "{\"idler\": " << b.idler
       << ", \"idler_level\": " << b.idler_level
       << ", \"holder\": " << b.holder << ", \"holder_phase\": \""
       << json_escaped(phase) << "\", \"idle_us\": "
       << json_double_exact(b.idle_us)
       << ", \"idle_pct\": " << json_double_exact(b.idle_pct) << "}";
  }
  if (n == 0) {
    os << "]";
  } else {
    os << "\n" << indent << "]";
  }
}

}  // namespace

int run_replay(const std::vector<EventLog>& logs, const ReplayOptions& opt,
               std::ostream& os) {
  // The subject of replay/sweep is the first parallel log; P=1 logs are
  // serial references for speedup/efficiency (matched on meta.n).
  const EventLog* main_log = nullptr;
  std::map<double, const EventLog*> serial_by_n;
  for (const EventLog& log : logs) {
    if (log.nprocs == 1) {
      if (serial_by_n.find(log.n) == serial_by_n.end()) {
        serial_by_n[log.n] = &log;
      }
    } else if (main_log == nullptr) {
      main_log = &log;
    }
  }
  if (main_log == nullptr && !logs.empty()) main_log = &logs[0];

  const auto target_for = [&opt](const EventLog& log) {
    ReplayCost t = log.cost;
    for (const auto& [key, v] : opt.overrides) t.set(key, v);
    return t;
  };

  bool check_ok = true;
  os << "{\n  \"schema\": \"pdt-replay-v1\",\n";
  os << "  \"inputs\": [";
  for (std::size_t i = 0; i < logs.size(); ++i) {
    const EventLog& log = logs[i];
    os << (i == 0 ? "" : ",") << "\n    {\"name\": \""
       << json_escaped(log.name) << "\", \"formulation\": \""
       << json_escaped(log.formulation) << "\", \"workload\": \""
       << json_escaped(log.workload) << "\", \"n\": "
       << json_double_exact(log.n) << ", \"procs\": " << log.nprocs
       << ", \"events\": " << log.events.size() << "}";
  }
  os << "\n  ]";

  // Predicted-vs-measured overlay from logs recorded with a host
  // profiler: the virtual clock is the model's prediction, total_ns is
  // what the recording machine actually spent. The scaling rows pair
  // every host-carrying log against the smallest-P one with the same
  // meta.n, so a P sweep of logs charts predicted speedup next to the
  // measured wall-time ratio.
  {
    std::vector<const EventLog*> host_logs;
    for (const EventLog& log : logs) {
      if (log.has_host && log.host_total_ns > 0.0) host_logs.push_back(&log);
    }
    if (!host_logs.empty()) {
      os << ",\n  \"host\": {\"logs\": [";
      for (std::size_t i = 0; i < host_logs.size(); ++i) {
        const EventLog& log = *host_logs[i];
        os << (i == 0 ? "" : ",") << "\n    {\"name\": \""
           << json_escaped(log.name) << "\", \"procs\": " << log.nprocs
           << ", \"clock\": \"" << json_escaped(log.host_clock)
           << "\", \"total_ns\": " << json_double_exact(log.host_total_ns)
           << ", \"samples\": " << log.host_samples
           << ", \"virtual_us\": "
           << json_double_exact(log.recorded_max_clock)
           << ", \"ns_per_virtual_us\": "
           << json_double_exact(log.recorded_max_clock > 0.0
                                    ? log.host_total_ns /
                                          log.recorded_max_clock
                                    : 0.0)
           << ", \"by_phase\": [";
        for (std::size_t p = 0; p < log.host_by_phase.size(); ++p) {
          const HostPhaseRow& row = log.host_by_phase[p];
          os << (p == 0 ? "" : ", ") << "{\"phase\": \""
             << json_escaped(row.phase)
             << "\", \"host_ns\": " << json_double_exact(row.host_ns)
             << ", \"virtual_us\": " << json_double_exact(row.virtual_us)
             << "}";
        }
        os << "]}";
      }
      os << "\n  ], \"scaling\": [";
      bool first = true;
      for (const EventLog* log : host_logs) {
        // Baseline: the smallest-P host log sharing this log's meta.n.
        const EventLog* base = nullptr;
        for (const EventLog* cand : host_logs) {
          if (cand->n != log->n) continue;
          if (base == nullptr || cand->nprocs < base->nprocs) base = cand;
        }
        if (base == nullptr || base == log) continue;
        os << (first ? "" : ",") << "\n    {\"name\": \""
           << json_escaped(log->name) << "\", \"procs\": " << log->nprocs
           << ", \"baseline_procs\": " << base->nprocs
           << ", \"predicted_speedup\": "
           << json_double_exact(log->recorded_max_clock > 0.0
                                    ? base->recorded_max_clock /
                                          log->recorded_max_clock
                                    : 0.0)
           << ", \"measured_host_ratio\": "
           << json_double_exact(log->host_total_ns > 0.0
                                    ? base->host_total_ns /
                                          log->host_total_ns
                                    : 0.0)
           << "}";
        first = false;
      }
      os << "\n  ]}";
    }
  }

  if (opt.check) {
    os << ",\n  \"check\": {\"logs\": [";
    for (std::size_t i = 0; i < logs.size(); ++i) {
      const EventLog& log = logs[i];
      const ReplayResult r = replay_log(log, log.cost);
      bool ok = r.max_clock == log.recorded_max_clock;
      os << (i == 0 ? "" : ",") << "\n    {\"name\": \""
         << json_escaped(log.name)
         << "\", \"max_clock_us\": " << json_double_exact(r.max_clock)
         << ", \"recorded_max_clock_us\": "
         << json_double_exact(log.recorded_max_clock)
         << ", \"mismatches\": [";
      bool first = true;
      for (int rank = 0; rank < log.nprocs; ++rank) {
        const double got = r.clocks[static_cast<std::size_t>(rank)];
        const double want =
            log.recorded_clocks[static_cast<std::size_t>(rank)];
        if (got == want) continue;
        ok = false;
        os << (first ? "" : ", ") << "{\"rank\": " << rank
           << ", \"replayed_us\": " << json_double_exact(got)
           << ", \"recorded_us\": " << json_double_exact(want) << "}";
        first = false;
      }
      os << "], \"ok\": " << (ok ? "true" : "false") << "}";
      if (!ok) check_ok = false;
    }
    os << "\n  ], \"ok\": " << (check_ok ? "true" : "false") << "}";
  }

  if (main_log != nullptr) {
    const ReplayCost target = target_for(*main_log);
    const ReplayResult r = replay_log(*main_log, target, true);
    os << ",\n  \"replay\": {\n    \"name\": \""
       << json_escaped(main_log->name) << "\",\n    \"cost_model\": {";
    write_cost_fields(os, target);
    os << "},\n    \"max_clock_us\": " << json_double_exact(r.max_clock)
       << ",\n    \"recorded_max_clock_us\": "
       << json_double_exact(main_log->recorded_max_clock)
       << ",\n    \"busy_total_us\": " << json_double_exact(r.busy_total)
       << ",\n    \"unscalable\": " << (r.unscalable ? "true" : "false")
       << ",\n    \"clocks\": [";
    for (std::size_t i = 0; i < r.clocks.size(); ++i) {
      os << (i == 0 ? "" : ", ") << json_double_exact(r.clocks[i]);
    }
    os << "],\n    \"blame\": ";
    write_blame(os, r.blame, main_log->phases, opt.blame_top, "      ");
    os << "\n  }";
  }

  if (!opt.sweep.empty() && main_log != nullptr) {
    const EventLog* serial = nullptr;
    if (const auto it = serial_by_n.find(main_log->n);
        it != serial_by_n.end()) {
      serial = it->second;
    } else if (!serial_by_n.empty()) {
      serial = serial_by_n.begin()->second;
    }
    os << ",\n  \"sweep\": {\n    \"axes\": [";
    for (std::size_t i = 0; i < opt.sweep.size(); ++i) {
      const SweepAxis& a = opt.sweep[i];
      os << (i == 0 ? "" : ", ") << "{\"key\": \"" << json_escaped(a.key)
         << "\", \"lo\": " << json_double_exact(a.lo)
         << ", \"hi\": " << json_double_exact(a.hi)
         << ", \"step\": " << json_double_exact(a.step) << "}";
    }
    os << "],\n    \"serial_reference\": \""
       << json_escaped(serial != nullptr ? serial->name : "busy-sum")
       << "\",\n    \"procs\": " << main_log->nprocs
       << ",\n    \"points\": [";

    std::vector<int> idx(opt.sweep.size(), 0);
    bool first = true;
    bool done = false;
    while (!done) {
      ReplayCost cost = target_for(*main_log);
      for (std::size_t a = 0; a < opt.sweep.size(); ++a) {
        cost.set(opt.sweep[a].key,
                 opt.sweep[a].lo + idx[a] * opt.sweep[a].step);
      }
      const ReplayResult r = replay_log(*main_log, cost);
      const double serial_us =
          serial != nullptr ? replay_log(*serial, cost).max_clock
                            : r.busy_total;
      const double speedup = r.max_clock > 0.0 ? serial_us / r.max_clock : 0.0;
      const double efficiency = speedup / main_log->nprocs;
      os << (first ? "" : ",") << "\n      {";
      for (std::size_t a = 0; a < opt.sweep.size(); ++a) {
        os << "\"" << json_escaped(opt.sweep[a].key) << "\": "
           << json_double_exact(opt.sweep[a].lo + idx[a] * opt.sweep[a].step)
           << ", ";
      }
      os << "\"max_clock_us\": " << json_double_exact(r.max_clock)
         << ", \"serial_us\": " << json_double_exact(serial_us)
         << ", \"speedup\": " << json_double_exact(speedup)
         << ", \"efficiency\": " << json_double_exact(efficiency) << "}";
      first = false;

      // Odometer increment over the axis grid.
      std::size_t a = 0;
      for (; a < opt.sweep.size(); ++a) {
        if (++idx[a] < axis_steps(opt.sweep[a])) break;
        idx[a] = 0;
      }
      done = a == opt.sweep.size();
    }
    os << "\n    ]\n  }";
  }

  if (opt.iso) {
    const double E = opt.iso_efficiency;
    // Serial reference times by recorded n, under the same overrides.
    std::map<double, double> serial_time;
    for (const auto& [n, log] : serial_by_n) {
      serial_time[n] = replay_log(*log, target_for(*log)).max_clock;
    }
    // Measured efficiency grid: procs -> sorted (n, efficiency).
    struct GridPoint {
      double n = 0.0;
      double efficiency = 0.0;
      double max_clock = 0.0;
      bool busy_estimate = false;
    };
    std::map<int, std::vector<GridPoint>> by_p;
    double iso_c = 0.0;
    for (const EventLog& log : logs) {
      if (log.nprocs <= 1) continue;
      if (iso_c == 0.0) iso_c = log.iso_c;
      const ReplayResult r = replay_log(log, target_for(log));
      GridPoint pt;
      pt.n = log.n;
      pt.max_clock = r.max_clock;
      const auto it = serial_time.find(log.n);
      const double serial_us =
          it != serial_time.end() ? it->second : r.busy_total;
      pt.busy_estimate = it == serial_time.end();
      pt.efficiency = r.max_clock > 0.0
                          ? serial_us / (log.nprocs * r.max_clock)
                          : 0.0;
      by_p[log.nprocs].push_back(pt);
    }
    os << ",\n  \"iso\": {\n    \"efficiency\": " << json_double_exact(E)
       << ",\n    \"iso_c\": " << json_double_exact(iso_c)
       << ",\n    \"points\": [";
    bool first = true;
    for (auto& [p, grid] : by_p) {
      std::sort(grid.begin(), grid.end(),
                [](const GridPoint& a, const GridPoint& b) { return a.n < b.n; });
      // Efficiency grows with n: find the bracketing pair around the
      // target and interpolate the measured isoefficiency point.
      double measured = 0.0;
      bool bracketed = false;
      std::size_t k = 0;
      while (k < grid.size() && grid[k].efficiency < E) ++k;
      if (k == 0) {
        measured = grid.empty() ? 0.0 : grid.front().n;
      } else if (k == grid.size()) {
        measured = grid.back().n;
      } else {
        const GridPoint& a = grid[k - 1];
        const GridPoint& b = grid[k];
        const double span = b.efficiency - a.efficiency;
        measured = span > 0.0
                       ? a.n + (E - a.efficiency) * (b.n - a.n) / span
                       : b.n;
        bracketed = true;
      }
      const double analytic =
          E < 1.0 ? E / (1.0 - E) * iso_c * p * ceil_log2_int(p) : 0.0;
      os << (first ? "" : ",") << "\n      {\"procs\": " << p
         << ", \"measured_n\": " << json_double_exact(measured)
         << ", \"analytic_n\": " << json_double_exact(analytic)
         << ", \"error_pct\": "
         << json_double_exact(analytic > 0.0
                                  ? 100.0 * (measured - analytic) / analytic
                                  : 0.0)
         << ", \"bracketed\": " << (bracketed ? "true" : "false")
         << ", \"grid\": [";
      for (std::size_t i = 0; i < grid.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "{\"n\": "
           << json_double_exact(grid[i].n) << ", \"efficiency\": "
           << json_double_exact(grid[i].efficiency) << ", \"max_clock_us\": "
           << json_double_exact(grid[i].max_clock) << ", \"busy_estimate\": "
           << (grid[i].busy_estimate ? "true" : "false") << "}";
      }
      os << "]}";
      first = false;
    }
    os << "\n    ]\n  }";
  }

  os << "\n}\n";
  return check_ok ? 0 : 1;
}

}  // namespace pdt::tools
