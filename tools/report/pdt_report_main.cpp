// pdt-report — render pdtree JSON reports as markdown.
//
// Accepts pdt-bench-v1 envelopes (what the bench binaries write) and bare
// pdt-metrics-v1 / pdt-comm-v1 / pdt-mem-v1 / pdt-host-v1 / pdt-threads-v1
// / pdt-replay-v1 / pdt-trend-v1 objects.
// Output is deterministic: the same inputs always produce byte-identical
// markdown. Exit codes follow the suite convention in common/cli.hpp.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "report/report.hpp"

namespace {

constexpr pdt::tools::CliSpec kSpec = {
    "pdt-report",
    "usage: pdt-report [-o out.md] [--section <name>]... <report.json>...\n"
    "\n"
    "Render pdt-bench-v1 / pdt-metrics-v1 / pdt-comm-v1 / pdt-mem-v1 /\n"
    "pdt-host-v1 / pdt-threads-v1 / pdt-replay-v1 / pdt-trend-v1 JSON\n"
    "reports as deterministic markdown.\n"
    "\n"
    "  -o out.md        write to out.md instead of stdout (atomic:\n"
    "                   temp file + rename)\n"
    "  --section NAME   render only this section (repeatable); report\n"
    "                   headers are always kept\n"
    "  --list-sections  print the selectable section names and exit\n"
    "  -h, --help       show this help\n"
    "  --version        print the tool-suite version\n",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pdt::tools;
  std::string out_path;
  std::vector<std::string> files;
  RenderOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    int code = kExitOk;
    if (standard_flag(kSpec, arg, &code)) return code;
    if (arg == "-o") {
      if (i + 1 >= argc) return usage(kSpec);
      out_path = argv[++i];
    } else if (arg == "--section") {
      if (i + 1 >= argc) return usage(kSpec);
      const std::string name = argv[++i];
      bool known = false;
      for (const char* s : kReportSections) known = known || name == s;
      if (!known) {
        std::fprintf(stderr,
                     "pdt-report: unknown section \"%s\" "
                     "(--list-sections shows the choices)\n",
                     name.c_str());
        return kExitUsage;
      }
      opt.sections.push_back(name);
    } else if (arg == "--list-sections") {
      for (const char* s : kReportSections) std::printf("%s\n", s);
      return kExitOk;
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) return usage(kSpec);

  std::vector<ReportInput> inputs;
  for (const std::string& path : files) {
    ReportInput in;
    in.name = path;
    if (!load_json_file(kSpec, path, &in.root)) return kExitUsage;
    inputs.push_back(std::move(in));
  }

  bool ok = false;
  if (out_path.empty()) {
    ok = render_report(inputs, std::cout, opt);
  } else {
    std::ostringstream os;
    ok = render_report(inputs, os, opt);
    if (!write_file_atomic(kSpec, out_path, os.str())) return kExitFail;
  }
  return ok ? kExitOk : kExitFail;
}
