// pdt-report — render pdtree JSON reports as markdown.
//
//   pdt-report [-o out.md] <report.json>...
//
// Accepts pdt-bench-v1 envelopes (what the bench binaries write) and bare
// pdt-metrics-v1 / pdt-comm-v1 objects. Output is deterministic: the same
// inputs always produce byte-identical markdown. Exits non-zero on
// unreadable or unparseable input, or on an unrecognized schema.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/json_value.hpp"
#include "report/report.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: pdt-report [-o out.md] <report.json>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) return usage();

  std::vector<pdt::tools::ReportInput> inputs;
  for (const std::string& path : files) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "pdt-report: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    pdt::tools::ReportInput in;
    in.name = path;
    std::string error;
    if (!pdt::tools::json_parse(buf.str(), &in.root, &error)) {
      std::fprintf(stderr, "pdt-report: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    inputs.push_back(std::move(in));
  }

  bool ok = false;
  if (out_path.empty()) {
    ok = pdt::tools::render_report(inputs, std::cout);
  } else {
    std::ofstream os(out_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "pdt-report: cannot write %s\n", out_path.c_str());
      return 1;
    }
    ok = pdt::tools::render_report(inputs, os);
  }
  return ok ? 0 : 1;
}
