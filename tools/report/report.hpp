// Deterministic markdown rendering of pdtree report files.
//
// render_report() accepts any mix of parsed pdt-bench-v1 envelopes (the
// <harness>.json files the bench binaries write), bare pdt-metrics-v1 /
// pdt-comm-v1 / pdt-mem-v1 objects, and pdt-replay-v1 reports (what
// pdt-replay emits: identity checks, what-if sweeps, measured-vs-analytic
// isoefficiency, wait-for blame), and renders the analysis views the
// paper argues from: speedup/efficiency tables, per-level time breakdown
// with load-imbalance factors, the collective cost-model error (measured
// vs the Eq. 2-4 prediction), the rank x rank communication matrix, the
// critical-path breakdown, and the per-rank memory tables with the
// Section-4 memory-scalability verdict. Output depends only on the input
// bytes — no
// timestamps, locales, or map orderings — so running the tool twice
// produces byte-identical markdown (CI relies on this).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_value.hpp"

namespace pdt::tools {

struct ReportInput {
  std::string name;  ///< display name (typically the file path)
  JsonValue root;
};

/// The selectable section names, in render order (what --list-sections
/// prints and --section validates against).
inline constexpr const char* kReportSections[] = {
    "speedup", "metrics", "comm", "memory", "host", "threads", "fault",
    "model", "replay", "trend",
};

struct RenderOptions {
  /// Sections to render; empty = all. Report headers (title, source,
  /// scale, cost model) are always rendered so filtered output stays
  /// self-describing.
  std::vector<std::string> sections;

  [[nodiscard]] bool wants(std::string_view name) const {
    if (sections.empty()) return true;
    for (const std::string& s : sections) {
      if (s == name) return true;
    }
    return false;
  }
};

/// Render all inputs into one markdown document. Returns false (after
/// still rendering what it can) if any input has an unrecognized schema.
bool render_report(const std::vector<ReportInput>& inputs, std::ostream& os,
                   const RenderOptions& opt);

/// Render everything (empty RenderOptions).
bool render_report(const std::vector<ReportInput>& inputs, std::ostream& os);

}  // namespace pdt::tools
