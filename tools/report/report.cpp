#include "report/report.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace pdt::tools {

namespace {

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return std::string(buf);
}

std::string fmt_int(double v) { return fmt(v, 0); }
std::string fmt_us(double v) { return fmt(v, 1); }

// ------------------------------------------------------------- metrics --

void render_metrics(const JsonValue& m, std::ostream& os) {
  os << "- ranks: " << m.get("num_ranks").as_int()
     << ", max tree level: " << m.get("max_level").as_int() << "\n\n";

  // Phase totals across levels, in first-appearance order (the phases
  // array is sorted by phase id, so this is deterministic).
  std::vector<std::string> phase_order;
  std::vector<std::array<double, 4>> phase_time;  // compute, comm, io, idle
  for (const JsonValue& p : m.get("phases").array()) {
    const std::string& name = p.get("phase").as_string();
    std::size_t i = 0;
    for (; i < phase_order.size(); ++i) {
      if (phase_order[i] == name) break;
    }
    if (i == phase_order.size()) {
      phase_order.push_back(name);
      phase_time.push_back({0.0, 0.0, 0.0, 0.0});
    }
    phase_time[i][0] += p.get("compute_us").as_double();
    phase_time[i][1] += p.get("comm_us").as_double();
    phase_time[i][2] += p.get("io_us").as_double();
    phase_time[i][3] += p.get("idle_us").as_double();
  }
  if (!phase_order.empty()) {
    os << "#### Phase totals (all levels, all ranks)\n\n";
    os << "| phase | compute_us | comm_us | io_us | idle_us |\n";
    os << "|---|---:|---:|---:|---:|\n";
    for (std::size_t i = 0; i < phase_order.size(); ++i) {
      os << "| " << phase_order[i] << " | " << fmt_us(phase_time[i][0])
         << " | " << fmt_us(phase_time[i][1]) << " | "
         << fmt_us(phase_time[i][2]) << " | " << fmt_us(phase_time[i][3])
         << " |\n";
    }
    os << "\n";
  }

  const JsonValue& levels = m.get("levels");
  if (levels.size() > 0) {
    os << "#### Per-level breakdown\n\n";
    os << "| level | compute_us | comm_us | io_us | idle_us | "
          "load imbalance | comm/compute |\n";
    os << "|---:|---:|---:|---:|---:|---:|---:|\n";
    for (const JsonValue& l : levels.array()) {
      os << "| " << l.get("level").as_int() << " | "
         << fmt_us(l.get("compute_us").as_double()) << " | "
         << fmt_us(l.get("comm_us").as_double()) << " | "
         << fmt_us(l.get("io_us").as_double()) << " | "
         << fmt_us(l.get("idle_us").as_double()) << " | "
         << fmt(l.get("load_imbalance").as_double(), 3) << " | "
         << fmt(l.get("comm_to_compute").as_double(), 3) << " |\n";
    }
    os << "\n";
  }
}

// ---------------------------------------------------------------- comm --

void render_comm(const JsonValue& c, std::ostream& os) {
  os << "- ranks: " << c.get("num_ranks").as_int() << ", collective calls: "
     << c.get("num_collective_calls").as_int() << "\n\n";

  const JsonValue& collectives = c.get("collectives");
  if (collectives.size() > 0) {
    os << "#### Collective cost model — measured vs Eq. 2-4 prediction\n\n";
    os << "| kind | calls | words | predicted_us | measured_us | delta_us | "
          "delta % | io_us | messages |\n";
    os << "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    double tot_pred = 0.0;
    double tot_meas = 0.0;
    double tot_io = 0.0;
    for (const JsonValue& k : collectives.array()) {
      const double pred = k.get("predicted_us").as_double();
      const double meas = k.get("measured_us").as_double();
      const double delta = k.get("delta_us").as_double();
      tot_pred += pred;
      tot_meas += meas;
      tot_io += k.get("io_us").as_double();
      os << "| " << k.get("kind").as_string() << " | "
         << k.get("calls").as_int() << " | "
         << fmt_int(k.get("words").as_double()) << " | " << fmt_us(pred)
         << " | " << fmt_us(meas) << " | " << fmt_us(delta) << " | "
         << fmt(pred > 0.0 ? 100.0 * delta / pred : 0.0, 2) << " | "
         << fmt_us(k.get("io_us").as_double()) << " | "
         << k.get("messages").as_int() << " |\n";
    }
    os << "| **total** | | | " << fmt_us(tot_pred) << " | " << fmt_us(tot_meas)
       << " | " << fmt_us(tot_meas - tot_pred) << " | "
       << fmt(tot_pred > 0.0 ? 100.0 * (tot_meas - tot_pred) / tot_pred : 0.0,
              2)
       << " | " << fmt_us(tot_io) << " | |\n\n";
  }

  const JsonValue& levels = c.get("levels");
  if (levels.size() > 0) {
    os << "#### Communication by tree level\n\n";
    os << "| level | calls | words | predicted_us | measured_us | "
          "delta_us |\n";
    os << "|---:|---:|---:|---:|---:|---:|\n";
    for (const JsonValue& l : levels.array()) {
      os << "| " << l.get("level").as_int() << " | " << l.get("calls").as_int()
         << " | " << fmt_int(l.get("words").as_double()) << " | "
         << fmt_us(l.get("predicted_us").as_double()) << " | "
         << fmt_us(l.get("measured_us").as_double()) << " | "
         << fmt_us(l.get("delta_us").as_double()) << " |\n";
    }
    os << "\n";
  }

  const JsonValue& bytes = c.get("matrix").get("bytes");
  const std::size_t n = bytes.size();
  if (n > 0) {
    os << "#### Traffic matrix (bytes, row = sender)\n\n";
    os << "| from\\to |";
    for (std::size_t t = 0; t < n; ++t) os << " " << t << " |";
    os << " sent |\n|---|";
    for (std::size_t t = 0; t <= n; ++t) os << "---:|";
    os << "\n";
    std::vector<double> col_sum(n, 0.0);
    double grand = 0.0;
    for (std::size_t f = 0; f < n; ++f) {
      const JsonValue& row = bytes.at(f);
      double row_sum = 0.0;
      os << "| " << f << " |";
      for (std::size_t t = 0; t < n; ++t) {
        const double b = row.at(t).as_double();
        row_sum += b;
        col_sum[t] += b;
        os << " " << fmt_int(b) << " |";
      }
      grand += row_sum;
      os << " " << fmt_int(row_sum) << " |\n";
    }
    os << "| **recv** |";
    for (std::size_t t = 0; t < n; ++t) os << " " << fmt_int(col_sum[t]) << " |";
    os << " " << fmt_int(grand) << " |\n\n";
  }

  const JsonValue& cp = c.get("critical_path");
  if (!cp.is_null()) {
    os << "#### Critical path\n\n";
    os << "- max_clock: " << fmt_us(cp.get("max_clock_us").as_double())
       << " us across " << cp.get("num_segments").as_int()
       << " segments, ending on rank " << cp.get("end_rank").as_int() << " ("
       << cp.get("handoffs").as_int() << " handoffs, "
       << cp.get("barriers").as_int() << " barriers observed)\n";
    const JsonValue& bk = cp.get("by_kind");
    const double total = cp.get("max_clock_us").as_double();
    os << "- by kind:";
    const char* kinds[] = {"compute_us", "comm_us", "io_us", "idle_us"};
    const char* kind_names[] = {"compute", "comm", "io", "idle"};
    for (int i = 0; i < 4; ++i) {
      const double v = bk.get(kinds[i]).as_double();
      os << (i == 0 ? " " : ", ") << kind_names[i] << " " << fmt_us(v)
         << " us (" << fmt(total > 0.0 ? 100.0 * v / total : 0.0, 1) << "%)";
    }
    os << "\n\n";

    const JsonValue& by_phase = cp.get("by_phase");
    if (by_phase.size() > 0) {
      os << "| phase | us | blame % |\n|---|---:|---:|\n";
      for (const JsonValue& p : by_phase.array()) {
        os << "| " << p.get("phase").as_string() << " | "
           << fmt_us(p.get("us").as_double()) << " | "
           << fmt(p.get("blame_pct").as_double(), 1) << " |\n";
      }
      os << "\n";
    }

    const JsonValue& top = cp.get("top_segments");
    if (top.size() > 0) {
      os << "Top segments by duration:\n\n";
      os << "| # | rank | phase | level | kind | start_us | dur_us | "
            "blame % |\n";
      os << "|---:|---:|---|---:|---|---:|---:|---:|\n";
      int i = 1;
      for (const JsonValue& s : top.array()) {
        os << "| " << i++ << " | " << s.get("rank").as_int() << " | "
           << s.get("phase").as_string() << " | " << s.get("level").as_int()
           << " | " << s.get("kind").as_string() << " | "
           << fmt_us(s.get("start_us").as_double()) << " | "
           << fmt_us(s.get("dur_us").as_double()) << " | "
           << fmt(s.get("blame_pct").as_double(), 1) << " |\n";
      }
      os << "\n";
    }
  }
}

// ----------------------------------------------------------------- mem --

std::string fmt_kib(double bytes) { return fmt(bytes / 1024.0, 1); }

void render_mem(const JsonValue& m, std::ostream& os) {
  os << "- ranks: " << m.get("num_ranks").as_int() << ", max per-rank peak: "
     << fmt_kib(m.get("max_rank_peak_bytes").as_double()) << " KiB (rank "
     << m.get("peak_rank").as_int() << "), sum of rank peaks: "
     << fmt_kib(m.get("total_peak_bytes").as_double()) << " KiB\n";

  const JsonValue& pred = m.get("predicted");
  if (!pred.is_null()) {
    os << "- Section-4 prediction: "
       << fmt_kib(pred.get("total_bytes").as_double()) << " KiB per rank ("
       << fmt_kib(pred.get("records_bytes").as_double()) << " records + "
       << fmt_kib(pred.get("histogram_bytes").as_double()) << " histograms + "
       << fmt_kib(pred.get("scratch_bytes").as_double())
       << " scratch); measured bottleneck is "
       << fmt(pred.get("max_rank_error_pct").as_double(), 1)
       << "% vs prediction\n";
  }
  os << "\n";

  const JsonValue& per_rank = m.get("per_rank");
  if (per_rank.size() > 0) {
    os << "#### Peak bytes per rank\n\n";
    os << "| rank | peak KiB | live KiB | largest structures |\n";
    os << "|---:|---:|---:|---|\n";
    for (const JsonValue& r : per_rank.array()) {
      os << "| " << r.get("rank").as_int() << " | "
         << fmt_kib(r.get("peak_bytes").as_double()) << " | "
         << fmt_kib(r.get("live_bytes").as_double()) << " | ";
      bool first = true;
      for (const JsonValue& t : r.get("tags").array()) {
        if (!first) os << ", ";
        first = false;
        os << t.get("tag").as_string() << " "
           << fmt_kib(t.get("peak_bytes").as_double());
      }
      os << " |\n";
    }
    os << "\n";
  }

  const JsonValue& tags = m.get("tags");
  if (tags.size() > 0) {
    os << "#### Peak bytes per structure\n\n";
    os << "| structure | max rank peak KiB | sum over ranks KiB |\n";
    os << "|---|---:|---:|\n";
    for (const JsonValue& t : tags.array()) {
      os << "| " << t.get("tag").as_string() << " | "
         << fmt_kib(t.get("max_rank_peak_bytes").as_double()) << " | "
         << fmt_kib(t.get("total_peak_bytes").as_double()) << " |\n";
    }
    os << "\n";
  }

  const JsonValue& ledger = m.get("ledger");
  if (!ledger.is_null()) {
    os << "- ledger: " << ledger.get("events").as_int() << " events, "
       << fmt_kib(ledger.get("charged_bytes").as_double())
       << " KiB charged, " << fmt_kib(ledger.get("released_bytes").as_double())
       << " KiB released\n\n";
    const JsonValue& top = ledger.get("top_segments");
    if (top.size() > 0) {
      os << "Top (structure, phase, level) segments by peak bytes:\n\n";
      os << "| # | structure | phase | level | rank | peak KiB | "
            "share of bottleneck % |\n";
      os << "|---:|---|---|---:|---:|---:|---:|\n";
      int i = 1;
      for (const JsonValue& s : top.array()) {
        os << "| " << i++ << " | " << s.get("tag").as_string() << " | "
           << s.get("phase").as_string() << " | " << s.get("level").as_int()
           << " | " << s.get("rank").as_int() << " | "
           << fmt_kib(s.get("peak_bytes").as_double()) << " | "
           << fmt(s.get("share_pct").as_double(), 1) << " |\n";
      }
      os << "\n";
    }
  }
}

// The memory-scalability verdict: at fixed N, does the per-rank memory
// bottleneck shrink as processors are added (the Section 4 O(N/P) claim)?
// Rendered from the mem_scaling sections of a bench envelope; structures
// whose max-rank peak fails to shrink from the smallest to the largest P
// are flagged (an expected flag for replicated histogram/scratch space,
// the damning one for anything holding records).
void render_mem_scaling(const JsonValue& sections, std::ostream& os) {
  for (const JsonValue& sec : sections.array()) {
    if (sec.get("type").as_string() != "mem_scaling") continue;
    const JsonValue& points = sec.get("points");
    if (points.size() == 0) continue;
    os << "### Memory scalability — " << sec.get("workload").as_string()
       << ", " << sec.get("formulation").as_string() << "\n\n";

    // Column per structure, in first-appearance order across points.
    std::vector<std::string> tag_order;
    for (const JsonValue& pt : points.array()) {
      for (const JsonValue& t : pt.get("mem").get("tags").array()) {
        const std::string& name = t.get("tag").as_string();
        bool seen = false;
        for (const std::string& s : tag_order) seen = seen || s == name;
        if (!seen) tag_order.push_back(name);
      }
    }
    os << "| P | max rank peak KiB | predicted KiB |";
    for (const std::string& t : tag_order) os << " " << t << " KiB |";
    os << "\n|---:|---:|---:|";
    for (std::size_t i = 0; i < tag_order.size(); ++i) os << "---:|";
    os << "\n";
    for (const JsonValue& pt : points.array()) {
      const JsonValue& mem = pt.get("mem");
      os << "| " << pt.get("procs").as_int() << " | "
         << fmt_kib(mem.get("max_rank_peak_bytes").as_double()) << " | ";
      const JsonValue& pred = mem.get("predicted");
      if (pred.is_null()) {
        os << "— |";
      } else {
        os << fmt_kib(pred.get("total_bytes").as_double()) << " |";
      }
      for (const std::string& tn : tag_order) {
        bool found = false;
        for (const JsonValue& t : mem.get("tags").array()) {
          if (t.get("tag").as_string() == tn) {
            os << " " << fmt_kib(t.get("max_rank_peak_bytes").as_double())
               << " |";
            found = true;
            break;
          }
        }
        if (!found) os << " — |";
      }
      os << "\n";
    }
    os << "\n";

    // Verdict: compare the first (smallest P) and last (largest P) points.
    const JsonValue& lo = points.at(0);
    const JsonValue& hi = points.at(points.size() - 1);
    const double lo_peak = lo.get("mem").get("max_rank_peak_bytes").as_double();
    const double hi_peak = hi.get("mem").get("max_rank_peak_bytes").as_double();
    const bool scales = hi_peak < lo_peak;
    os << "**Verdict: " << (scales ? "PASS" : "FLAG")
       << "** — max per-rank peak " << (scales ? "shrinks" : "does not shrink")
       << " from " << fmt_kib(lo_peak) << " KiB at P="
       << lo.get("procs").as_int() << " to " << fmt_kib(hi_peak)
       << " KiB at P=" << hi.get("procs").as_int();
    if (lo_peak > 0.0 && hi_peak > 0.0) {
      os << " (ratio x" << fmt(lo_peak / hi_peak, 2) << ")";
    }
    os << ".\n";
    for (const std::string& tn : tag_order) {
      auto tag_peak = [&](const JsonValue& pt) {
        for (const JsonValue& t : pt.get("mem").get("tags").array()) {
          if (t.get("tag").as_string() == tn) {
            return t.get("max_rank_peak_bytes").as_double();
          }
        }
        return 0.0;
      };
      const double lo_t = tag_peak(lo);
      const double hi_t = tag_peak(hi);
      if (hi_t >= lo_t && hi_t > 0.0) {
        os << "- flagged: `" << tn << "` per-rank peak does not shrink with P ("
           << fmt_kib(lo_t) << " KiB at P=" << lo.get("procs").as_int()
           << " -> " << fmt_kib(hi_t) << " KiB at P="
           << hi.get("procs").as_int() << ")\n";
      }
    }
    os << "\n";
  }
}

// ---------------------------------------------------------------- host --

std::string fmt_ms_from_ns(double ns) { return fmt(ns / 1e6, 3); }

// The virtual-vs-host side-by-side of one instrumented run: both clocks'
// per-phase shares of their own totals, and the signed divergence (in
// percentage points) ranking where the SP-2 cost model and this host
// disagree most about where the time goes.
void render_host(const JsonValue& h, std::ostream& os) {
  os << "- host clock: `" << h.get("clock").as_string() << "`, "
     << fmt_ms_from_ns(h.get("total_ns").as_double()) << " ms over "
     << h.get("samples").as_int() << " samples (paired virtual total: "
     << fmt_us(h.get("virtual_total_us").as_double()) << " us)\n";
  if (h.get("clamped").as_int() > 0) {
    os << "- **clock anomalies**: " << h.get("clamped").as_int()
       << " backwards steps clamped to zero-length intervals\n";
  }
  const JsonValue& c = h.get("counters");
  if (!c.is_null()) {
    if (c.get("enabled").as_bool()) {
      os << "- hw counters: " << fmt_int(c.get("cycles").as_double())
         << " cycles, " << fmt_int(c.get("instructions").as_double())
         << " instructions (IPC " << fmt(c.get("ipc").as_double(), 2)
         << ")\n";
    } else if (c.get("requested").as_bool()) {
      os << "- hw counters: requested but unavailable (perf_event_open "
            "refused or unsupported on this platform)\n";
    }
  }
  os << "\n";

  const JsonValue& by_phase = h.get("by_phase");
  if (by_phase.size() == 0) return;
  os << "#### Host vs simulated time share by phase\n\n";
  os << "| phase | host ms | host % | virtual us | virtual % | "
        "divergence pp |\n";
  os << "|---|---:|---:|---:|---:|---:|\n";
  for (const JsonValue& p : by_phase.array()) {
    os << "| " << p.get("phase").as_string() << " | "
       << fmt_ms_from_ns(p.get("host_ns").as_double()) << " | "
       << fmt(p.get("host_share_pct").as_double(), 1) << " | "
       << fmt_us(p.get("virtual_us").as_double()) << " | "
       << fmt(p.get("virtual_share_pct").as_double(), 1) << " | "
       << fmt(p.get("divergence_pp").as_double(), 1) << " |\n";
  }
  os << "\n";

  // Divergence ranking: phases whose host share most exceeds (+) or
  // falls short of (-) their simulated share. Stable sort keeps the
  // input (phase-id) order on ties, so the output is deterministic.
  std::vector<const JsonValue*> ranked;
  for (const JsonValue& p : by_phase.array()) ranked.push_back(&p);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const JsonValue* a, const JsonValue* b) {
                     return std::fabs(a->get("divergence_pp").as_double()) >
                            std::fabs(b->get("divergence_pp").as_double());
                   });
  if (ranked.size() > 3) ranked.resize(3);
  os << "Largest simulated-vs-real divergences (+ = dearer on this host "
        "than the cost model says):";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const double d = ranked[i]->get("divergence_pp").as_double();
    os << (i == 0 ? " " : ", ") << ranked[i]->get("phase").as_string() << " ("
       << (d >= 0.0 ? "+" : "") << fmt(d, 1) << "pp)";
  }
  os << "\n\n";
}

// ------------------------------------------------------------- threads --

void render_threads(const JsonValue& t, std::ostream& os) {
  os << "- hardware concurrency: " << t.get("hardware_concurrency").as_int()
     << " (max shards " << t.get("max_shards").as_int() << ")\n";
  const JsonValue& reg = t.get("registry");
  if (!reg.is_null()) {
    os << "- registered threads: " << reg.get("registered").as_int()
       << " (peak active " << reg.get("peak_active").as_int() << ", active "
       << reg.get("active").as_int() << ", overflow "
       << reg.get("overflow").as_int() << ")\n";
  }
  const JsonValue& drops = t.get("drops");
  if (!drops.is_null()) {
    // Emit non-zero drop counters only: a healthy report reads as one
    // clean line instead of a zero parade.
    std::string dropped;
    for (const auto& [key, v] : drops.object()) {
      if (v.as_int() == 0) continue;
      dropped += (dropped.empty() ? "" : ", ") + key + "=" +
                 std::to_string(v.as_int());
    }
    os << "- drops: " << (dropped.empty() ? "none" : dropped) << "\n";
  }
  os << "\n";

  const JsonValue& collectors = t.get("collectors");
  if (collectors.size() > 0) {
    os << "#### Collector shards\n\n";
    os << "| collector | samples | live shards | merge order | dropped |\n";
    os << "|---|---:|---|---|---:|\n";
    for (const JsonValue& c : collectors.array()) {
      std::string live;
      for (const JsonValue& s : c.get("shards").array()) {
        live += (live.empty() ? "" : " ") +
                std::to_string(s.get("shard").as_int()) + ":" +
                std::to_string(s.get("samples").as_int());
      }
      std::string merged;
      for (const JsonValue& s : c.get("merge_order").array()) {
        merged += (merged.empty() ? "" : " ") +
                  std::to_string(s.get("shard").as_int()) + ":" +
                  std::to_string(s.get("samples").as_int());
      }
      os << "| " << c.get("name").as_string() << " | "
         << c.get("samples").as_int() << " | " << (live.empty() ? "-" : live)
         << " | " << (merged.empty() ? "-" : merged) << " | "
         << c.get("dropped").as_int() << " |\n";
    }
    os << "\n";
  }

  const JsonValue& locks = t.get("locks");
  if (locks.size() > 0) {
    os << "#### Lock contention\n\n";
    os << "| lock | acquisitions | contended | wait ms |\n";
    os << "|---|---:|---:|---:|\n";
    for (const JsonValue& l : locks.array()) {
      os << "| `" << l.get("name").as_string() << "` | "
         << l.get("acquisitions").as_int() << " | "
         << l.get("contended").as_int() << " | "
         << fmt_ms_from_ns(l.get("wait_ns").as_double()) << " |\n";
    }
    os << "\n";
  }
}

// The host-time speedup table: for every formulation measured at two or
// more processor counts, how the *wall* time of the simulated runs
// scales next to the virtual speedup the simulator predicts. On one
// host core the wall time should be roughly flat in P (same data work +
// simulation overhead) — the virtual column is the paper's claim, the
// host column is what this machine actually did; divergence between the
// two trends is the point of the table.
void render_host_speedup(const JsonValue& sections, std::ostream& os) {
  struct Entry {
    std::int64_t procs;
    double host_ns;
    double virt_us;
  };
  std::vector<std::string> forms;
  std::vector<std::vector<Entry>> by_form;
  for (const JsonValue& sec : sections.array()) {
    if (sec.get("type").as_string() != "instrumented_run") continue;
    const JsonValue& h = sec.get("host");
    if (h.is_null()) continue;
    const std::string& f = sec.get("formulation").as_string();
    std::size_t i = 0;
    for (; i < forms.size(); ++i) {
      if (forms[i] == f) break;
    }
    if (i == forms.size()) {
      forms.push_back(f);
      by_form.emplace_back();
    }
    by_form[i].push_back(Entry{sec.get("procs").as_int(),
                               h.get("total_ns").as_double(),
                               sec.get("max_clock_us").as_double()});
  }

  for (std::size_t i = 0; i < forms.size(); ++i) {
    std::vector<Entry>& entries = by_form[i];
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.procs < b.procs;
                     });
    if (entries.size() < 2 || entries.front().procs == entries.back().procs) {
      continue;
    }
    const Entry& base = entries.front();
    os << "### Host-time speedup — " << forms[i] << " (baseline P="
       << base.procs << ")\n\n";
    os << "| P | host ms | host speedup | virtual us | virtual speedup |\n";
    os << "|---:|---:|---:|---:|---:|\n";
    for (const Entry& e : entries) {
      os << "| " << e.procs << " | " << fmt_ms_from_ns(e.host_ns) << " | "
         << fmt(e.host_ns > 0.0 ? base.host_ns / e.host_ns : 0.0, 2) << " | "
         << fmt_us(e.virt_us) << " | "
         << fmt(e.virt_us > 0.0 ? base.virt_us / e.virt_us : 0.0, 2)
         << " |\n";
    }
    os << "\n";
  }
}

// ---------------------------------------------------------------- bench --

void render_speedup_tables(const JsonValue& sections, std::ostream& os) {
  // Merge all speedup_series sections that share a workload into one
  // table per quantity, formulations as columns in section order.
  struct Series {
    std::string formulation;
    const JsonValue* points;
  };
  std::vector<std::string> workloads;
  std::vector<std::vector<Series>> by_workload;
  for (const JsonValue& sec : sections.array()) {
    if (sec.get("type").as_string() != "speedup_series") continue;
    const std::string& w = sec.get("workload").as_string();
    std::size_t i = 0;
    for (; i < workloads.size(); ++i) {
      if (workloads[i] == w) break;
    }
    if (i == workloads.size()) {
      workloads.push_back(w);
      by_workload.emplace_back();
    }
    by_workload[i].push_back(
        Series{sec.get("formulation").as_string(), &sec.get("points")});
  }

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const std::vector<Series>& series = by_workload[wi];
    // Union of processor counts, in first-seen order (series emit them
    // ascending, so the union stays sorted for well-formed files).
    std::vector<std::int64_t> procs;
    for (const Series& s : series) {
      for (const JsonValue& pt : s.points->array()) {
        const std::int64_t p = pt.get("procs").as_int();
        bool seen = false;
        for (const std::int64_t q : procs) seen = seen || q == p;
        if (!seen) procs.push_back(p);
      }
    }
    const struct {
      const char* title;
      const char* field;
      int decimals;
    } tables[] = {
        {"Speedup", "speedup", 2},
        {"Efficiency", "efficiency", 3},
        {"Runtime (virtual us)", "time_us", 1},
    };
    for (const auto& tbl : tables) {
      os << "### " << tbl.title << " — " << workloads[wi] << "\n\n";
      os << "| P |";
      for (const Series& s : series) os << " " << s.formulation << " |";
      os << "\n|---:|";
      for (std::size_t i = 0; i < series.size(); ++i) os << "---:|";
      os << "\n";
      for (const std::int64_t p : procs) {
        os << "| " << p << " |";
        for (const Series& s : series) {
          bool found = false;
          for (const JsonValue& pt : s.points->array()) {
            if (pt.get("procs").as_int() == p) {
              os << " " << fmt(pt.get(tbl.field).as_double(), tbl.decimals)
                 << " |";
              found = true;
              break;
            }
          }
          if (!found) os << " — |";
        }
        os << "\n";
      }
      os << "\n";
    }
  }
}

// --------------------------------------------------------------- model --

// One row per "model" section: the classifier each tagged run grew. The
// digest column is the headline — every formulation at every P growing
// one workload must show the same value (pdt-tree diff turns a mismatch
// into a failing gate; this table is where a human spots it first).
void render_model_table(const JsonValue& sections, std::ostream& os) {
  bool any = false;
  for (const JsonValue& sec : sections.array()) {
    any = any || sec.get("type").as_string() == "model";
  }
  if (!any) return;
  os << "### Models (pdt-model-v1)\n\n";
  os << "| tag | formulation | P | digest | nodes | leaves | depth | "
        "held-out accuracy |\n";
  os << "|---|---|---:|---|---:|---:|---:|---:|\n";
  for (const JsonValue& sec : sections.array()) {
    if (sec.get("type").as_string() != "model") continue;
    os << "| " << sec.get("tag").as_string() << " | "
       << sec.get("formulation").as_string() << " | "
       << sec.get("procs").as_int() << " | `"
       << sec.get("digest").as_string().substr(0, 12) << "` | "
       << sec.get("nodes").as_int() << " | " << sec.get("leaves").as_int()
       << " | " << sec.get("depth").as_int() << " | "
       << fmt(sec.get("accuracy").as_double(), 4) << " |\n";
  }
  os << "\n";
}

// -------------------------------------------------------------- replay --

void render_blame_table(const JsonValue& blame, std::ostream& os) {
  if (blame.size() == 0) return;
  os << "#### Wait-for blame (top " << blame.size() << " edges)\n\n";
  os << "| idler | level | waits on | holder phase | idle_us | idle % |\n";
  os << "|---:|---:|---:|---|---:|---:|\n";
  for (const JsonValue& b : blame.array()) {
    os << "| " << b.get("idler").as_int() << " | "
       << b.get("idler_level").as_int() << " | " << b.get("holder").as_int()
       << " | " << b.get("holder_phase").as_string() << " | "
       << fmt_us(b.get("idle_us").as_double()) << " | "
       << fmt(b.get("idle_pct").as_double(), 1) << " |\n";
  }
  os << "\n";
}

void render_replay(const ReportInput& in, std::ostream& os) {
  const JsonValue& root = in.root;
  os << "# Replay report: `" << in.name << "`\n\n";

  const JsonValue& inputs = root.get("inputs");
  if (inputs.size() > 0) {
    os << "#### Replayed logs\n\n";
    os << "| log | formulation | workload | n | procs | events |\n";
    os << "|---|---|---|---:|---:|---:|\n";
    for (const JsonValue& l : inputs.array()) {
      os << "| `" << l.get("name").as_string() << "` | "
         << l.get("formulation").as_string() << " | "
         << l.get("workload").as_string() << " | "
         << fmt_int(l.get("n").as_double()) << " | "
         << l.get("procs").as_int() << " | " << l.get("events").as_int()
         << " |\n";
    }
    os << "\n";
  }

  const JsonValue& host = root.get("host");
  if (!host.is_null()) {
    const JsonValue& hlogs = host.get("logs");
    if (hlogs.size() > 0) {
      os << "#### Host overlay — measured wall time of the recorded runs\n\n";
      os << "| log | procs | clock | host ms | virtual us | "
            "ns per virtual us |\n";
      os << "|---|---:|---|---:|---:|---:|\n";
      for (const JsonValue& l : hlogs.array()) {
        os << "| `" << l.get("name").as_string() << "` | "
           << l.get("procs").as_int() << " | "
           << l.get("clock").as_string() << " | "
           << fmt_ms_from_ns(l.get("total_ns").as_double()) << " | "
           << fmt_us(l.get("virtual_us").as_double()) << " | "
           << fmt(l.get("ns_per_virtual_us").as_double(), 2) << " |\n";
      }
      os << "\n";
    }
    const JsonValue& scaling = host.get("scaling");
    if (scaling.size() > 0) {
      os << "#### Predicted vs measured scaling\n\n";
      os << "| log | procs | baseline P | predicted speedup | "
            "measured host ratio |\n";
      os << "|---|---:|---:|---:|---:|\n";
      for (const JsonValue& s : scaling.array()) {
        os << "| `" << s.get("name").as_string() << "` | "
           << s.get("procs").as_int() << " | "
           << s.get("baseline_procs").as_int() << " | "
           << fmt(s.get("predicted_speedup").as_double(), 2) << " | "
           << fmt(s.get("measured_host_ratio").as_double(), 2) << " |\n";
      }
      os << "\nPredicted speedup re-prices the virtual clocks; the "
            "measured ratio is wall time on the recording host (flat is "
            "expected on one core — divergence between the trends is the "
            "simulation overhead/cost-model gap).\n\n";
    }
  }

  const JsonValue& check = root.get("check");
  if (!check.is_null()) {
    const bool ok = check.get("ok").as_bool();
    os << "#### Replay identity check — "
       << (ok ? "**PASS**" : "**FAIL**")
       << " (every per-rank clock bit-exact)\n\n";
    os << "| log | replayed max_clock_us | recorded max_clock_us | "
          "mismatched ranks |\n";
    os << "|---|---:|---:|---:|\n";
    for (const JsonValue& l : check.get("logs").array()) {
      os << "| `" << l.get("name").as_string() << "` | "
         << fmt_us(l.get("max_clock_us").as_double()) << " | "
         << fmt_us(l.get("recorded_max_clock_us").as_double()) << " | "
         << l.get("mismatches").size() << " |\n";
    }
    os << "\n";
  }

  const JsonValue& replay = root.get("replay");
  if (!replay.is_null()) {
    const JsonValue& cm = replay.get("cost_model");
    os << "#### What-if replay of `" << replay.get("name").as_string()
       << "`\n\n";
    os << "- cost model: t_s=" << fmt(cm.get("t_s").as_double(), 2)
       << "us, t_w=" << fmt(cm.get("t_w").as_double(), 3)
       << "us/word, t_c=" << fmt(cm.get("t_c").as_double(), 3)
       << "us, t_io=" << fmt(cm.get("t_io").as_double(), 3)
       << "us/word, t_timeout=" << fmt(cm.get("t_timeout").as_double(), 0)
       << "us\n";
    os << "- replayed runtime: "
       << fmt_us(replay.get("max_clock_us").as_double()) << " us (recorded "
       << fmt_us(replay.get("recorded_max_clock_us").as_double())
       << " us)\n";
    if (replay.get("unscalable").as_bool()) {
      os << "- **note:** some overridden constants were 0 in the recorded "
            "run; those charges could not be rescaled\n";
    }
    os << "\n";
    render_blame_table(replay.get("blame"), os);
  }

  const JsonValue& sweep = root.get("sweep");
  if (!sweep.is_null()) {
    std::vector<std::string> axes;
    for (const JsonValue& a : sweep.get("axes").array()) {
      axes.push_back(a.get("key").as_string());
    }
    os << "#### Cost-model sweep — P=" << sweep.get("procs").as_int()
       << ", serial reference `"
       << sweep.get("serial_reference").as_string() << "`\n\n";
    os << "|";
    for (const std::string& k : axes) os << " " << k << " |";
    os << " max_clock_us | serial_us | speedup | efficiency |\n|";
    for (std::size_t i = 0; i < axes.size(); ++i) os << "---:|";
    os << "---:|---:|---:|---:|\n";
    for (const JsonValue& pt : sweep.get("points").array()) {
      os << "|";
      for (const std::string& k : axes) {
        os << " " << fmt(pt.get(k).as_double(), 3) << " |";
      }
      os << " " << fmt_us(pt.get("max_clock_us").as_double()) << " | "
         << fmt_us(pt.get("serial_us").as_double()) << " | "
         << fmt(pt.get("speedup").as_double(), 2) << " | "
         << fmt(pt.get("efficiency").as_double(), 3) << " |\n";
    }
    os << "\n";
  }

  const JsonValue& iso = root.get("iso");
  if (!iso.is_null()) {
    os << "#### Isoefficiency — measured vs analytic at E="
       << fmt(iso.get("efficiency").as_double(), 2)
       << " (iso_c=" << fmt(iso.get("iso_c").as_double(), 3) << ")\n\n";
    os << "| procs | measured N | analytic N | error % | bracketed |\n";
    os << "|---:|---:|---:|---:|---|\n";
    for (const JsonValue& pt : iso.get("points").array()) {
      os << "| " << pt.get("procs").as_int() << " | "
         << fmt_int(pt.get("measured_n").as_double()) << " | "
         << fmt_int(pt.get("analytic_n").as_double()) << " | "
         << fmt(pt.get("error_pct").as_double(), 1) << " | "
         << (pt.get("bracketed").as_bool() ? "yes" : "no (grid edge)")
         << " |\n";
    }
    os << "\n";
    os << "Measured N interpolates the recorded efficiency grid at the "
          "target; analytic N = E/(1-E) * iso_c * P log2 P "
          "(isoefficiency_records).\n\n";
    for (const JsonValue& pt : iso.get("points").array()) {
      os << "##### Efficiency grid, P=" << pt.get("procs").as_int() << "\n\n";
      os << "| n | efficiency | max_clock_us | serial source |\n";
      os << "|---:|---:|---:|---|\n";
      for (const JsonValue& g : pt.get("grid").array()) {
        os << "| " << fmt_int(g.get("n").as_double()) << " | "
           << fmt(g.get("efficiency").as_double(), 3) << " | "
           << fmt_us(g.get("max_clock_us").as_double()) << " | "
           << (g.get("busy_estimate").as_bool() ? "busy-sum estimate"
                                                : "P=1 replay")
           << " |\n";
      }
      os << "\n";
    }
  }
}

void render_bench(const ReportInput& in, std::ostream& os,
                  const RenderOptions& opt) {
  const JsonValue& root = in.root;
  os << "# Bench report: " << root.get("harness").as_string() << "\n\n";
  os << "- source: `" << in.name << "`\n";
  os << "- dataset scale: " << fmt(root.get("scale").as_double(), 3) << "\n";
  const JsonValue& cm = root.get("cost_model");
  if (!cm.is_null()) {
    os << "- cost model: t_s=" << fmt(cm.get("t_s").as_double(), 2)
       << "us, t_w=" << fmt(cm.get("t_w").as_double(), 3)
       << "us/word, t_c=" << fmt(cm.get("t_c").as_double(), 3)
       << "us, t_io=" << fmt(cm.get("t_io").as_double(), 3) << "us/word\n";
  }
  os << "\n";

  const JsonValue& sections = root.get("sections");
  if (opt.wants("speedup")) render_speedup_tables(sections, os);
  if (opt.wants("host")) render_host_speedup(sections, os);
  if (opt.wants("memory")) render_mem_scaling(sections, os);
  if (opt.wants("model")) render_model_table(sections, os);

  for (const JsonValue& sec : sections.array()) {
    const std::string& type = sec.get("type").as_string();
    if (type == "mem_run") {
      if (!opt.wants("memory")) continue;
      os << "## Memory run `" << sec.get("tag").as_string() << "` — P="
         << sec.get("procs").as_int() << "\n\n";
      render_mem(sec.get("mem"), os);
      continue;
    }
    if (type == "mem_contrast") {
      if (!opt.wants("memory")) continue;
      os << "## Memory contrast at P=" << sec.get("procs").as_int() << "\n\n";
      for (const JsonValue& row : sec.get("rows").array()) {
        os << "### " << row.get("scheme").as_string() << " ("
           << fmt_int(row.get("hash_comm_words").as_double())
           << " hash words communicated)\n\n";
        render_mem(row.get("mem"), os);
      }
      continue;
    }
    if (type == "fault_tolerance") {
      if (!opt.wants("fault")) continue;
      os << "## Fault tolerance (pdt-ft-v1) — "
         << sec.get("formulation").as_string() << ", P="
         << sec.get("procs").as_int() << ", n=" << sec.get("n").as_int()
         << "\n\n";
      os << "| scenario | time_us | overhead % | ckpts | fails | ckpt KiB | "
            "ckpt io_us | detect_us | recovery_us | redistributed | "
            "tree identical |\n";
      os << "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n";
      bool all_identical = true;
      for (const JsonValue& row : sec.get("rows").array()) {
        const bool identical = row.get("tree_identical").as_bool();
        all_identical = all_identical && identical;
        os << "| " << row.get("scenario").as_string() << " | "
           << fmt_us(row.get("time_us").as_double()) << " | "
           << fmt(row.get("overhead_pct").as_double(), 2) << " | "
           << row.get("checkpoints").as_int() << " | "
           << row.get("failures").as_int() << " | "
           << fmt_kib(row.get("checkpoint_bytes").as_double()) << " | "
           << fmt_us(row.get("checkpoint_io_us").as_double()) << " | "
           << fmt_us(row.get("detect_us").as_double()) << " | "
           << fmt_us(row.get("recovery_us").as_double()) << " | "
           << row.get("records_redistributed").as_int() << " | "
           << (identical ? "yes" : "**NO**") << " |\n";
      }
      // Retry/backoff and durable-checkpoint columns (absent from
      // pre-§13 artifacts — every getter defaults to zero, and the
      // table is skipped entirely when nothing recorded them).
      bool any_resilience = false;
      for (const JsonValue& row : sec.get("rows").array()) {
        any_resilience = any_resilience ||
                         row.get("retries").as_int() > 0 ||
                         row.get("durable_checkpoints").as_int() > 0 ||
                         row.get("resumed").as_bool();
      }
      if (any_resilience) {
        os << "\n| scenario | retries | retry_us | escalations | "
              "durable ckpts | durable KiB | durable io_us | resumed | "
              "epoch | skipped | resume io_us | resume records |\n";
        os << "|---|---:|---:|---:|---:|---:|---:|---|---:|---:|---:|---:|\n";
        for (const JsonValue& row : sec.get("rows").array()) {
          os << "| " << row.get("scenario").as_string() << " | "
             << row.get("retries").as_int() << " | "
             << fmt_us(row.get("retry_us").as_double()) << " | "
             << row.get("escalations").as_int() << " | "
             << row.get("durable_checkpoints").as_int() << " | "
             << fmt_kib(row.get("durable_bytes").as_double()) << " | "
             << fmt_us(row.get("durable_io_us").as_double()) << " | "
             << (row.get("resumed").as_bool() ? "yes" : "no") << " | "
             << row.get("resume_epoch").as_int(-1) << " | "
             << row.get("resume_skipped").as_int() << " | "
             << fmt_us(row.get("resume_io_us").as_double()) << " | "
             << row.get("resume_records").as_int() << " |\n";
        }
      }
      os << "\n**Verdict: " << (all_identical ? "PASS" : "FLAG")
         << "** — every scenario's tree "
         << (all_identical ? "matches" : "must match")
         << " the fault-free baseline.\n\n";
      continue;
    }
    if (type != "instrumented_run") continue;
    os << "## Instrumented run `" << sec.get("tag").as_string() << "` — "
       << sec.get("formulation").as_string() << ", P="
       << sec.get("procs").as_int() << ", n=" << sec.get("n").as_int()
       << "\n\n";
    os << "- simulated runtime: " << fmt_us(sec.get("max_clock_us").as_double())
       << " us\n";
    const JsonValue& metrics = sec.get("metrics");
    if (!metrics.is_null() && opt.wants("metrics")) render_metrics(metrics, os);
    const JsonValue& comm = sec.get("comm");
    if (!comm.is_null() && opt.wants("comm")) {
      os << "### Communication (pdt-comm-v1)\n\n";
      render_comm(comm, os);
    }
    const JsonValue& mem = sec.get("mem");
    if (!mem.is_null() && opt.wants("memory")) {
      os << "### Memory (pdt-mem-v1)\n\n";
      render_mem(mem, os);
    }
    const JsonValue& host = sec.get("host");
    if (!host.is_null() && opt.wants("host")) {
      os << "### Host wall-clock (pdt-host-v1)\n\n";
      render_host(host, os);
    }
    const JsonValue& threads = sec.get("threads");
    if (!threads.is_null() && opt.wants("threads")) {
      os << "### Concurrency (pdt-threads-v1)\n\n";
      render_threads(threads, os);
    }
  }
}

// --------------------------------------------------------------- trend --

/// Unicode sparkline of `values`, normalized to the series' own
/// min..max (a flat series renders as all-low bars). The glyph ramp is
/// fixed, so the output is deterministic for given inputs.
std::string sparkline(const std::vector<double>& values) {
  static constexpr const char* kBars[] = {"▁", "▂", "▃", "▄",
                                          "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values[0];
  double hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    int idx = 0;
    if (hi > lo) {
      idx = static_cast<int>(7.0 * (v - lo) / (hi - lo) + 0.5);
      idx = std::max(0, std::min(7, idx));
    }
    out += kBars[idx];
  }
  return out;
}

void render_trend(const ReportInput& in, std::ostream& os) {
  const JsonValue& root = in.root;
  os << "# Trend report: `" << in.name << "`\n\n";
  os << "- runs: " << root.get("runs").as_int() << ", window "
     << root.get("window").as_int() << ", host floor "
     << fmt(100.0 * root.get("tol").as_double(), 1) << "% / mad_k "
     << fmt(root.get("mad_k").as_double(), 1) << ", virtual tol "
     << fmt(100.0 * root.get("vtol").as_double(), 2) << "%\n\n";

  const JsonValue& meta = root.get("meta");
  if (meta.size() > 0) {
    os << "#### Runs\n\n";
    os << "| seq | timestamp | build | label |\n";
    os << "|---:|---|---|---|\n";
    for (const JsonValue& m : meta.array()) {
      const std::string& sha = m.get("git_sha").as_string();
      os << "| " << m.get("seq").as_int() << " | "
         << (m.get("timestamp").as_string().empty()
                 ? "-"
                 : m.get("timestamp").as_string())
         << " | " << (sha.empty() ? "unknown" : sha)
         << (m.get("git_dirty").as_bool() ? "\\*" : "") << " | "
         << (m.get("label").as_string().empty() ? "-"
                                                : m.get("label").as_string())
         << " |\n";
    }
    os << "\n";
  }

  const JsonValue& tuples = root.get("tuples");
  if (tuples.size() > 0) {
    os << "#### Tuple history\n\n";
    os << "| tuple | kind | trend | latest | vs window | verdict |\n";
    os << "|---|---|---|---:|---|---|\n";
    for (const JsonValue& t : tuples.array()) {
      const bool is_host = t.get("kind").as_string() == "host";
      std::vector<double> values;
      for (const JsonValue& v : t.get("values").array()) {
        values.push_back(v.as_double());
      }
      // Changepoint markers ride after the sparkline: ^ = shifted up
      // (slower), v = shifted down (faster), at the marked seq.
      std::string marks;
      for (const JsonValue& c : t.get("changepoints").array()) {
        marks += (marks.empty() ? "" : " ");
        marks += c.get("direction").as_string() == "up" ? "^" : "v";
        marks += "@" + std::to_string(c.get("seq").as_int());
      }
      const double latest =
          values.empty() ? 0.0 : values.back();
      std::string vs = "-";
      if (t.has("base")) {
        const double base = t.get("base").as_double();
        const double delta = latest - base;
        vs = (delta >= 0.0 ? "+" : "") +
             fmt(base != 0.0 ? 100.0 * delta / base : 0.0, 1) + "% (band ±" +
             (is_host ? fmt(t.get("band").as_double() / 1e6, 3) + " ms"
                      : fmt(t.get("band").as_double(), 1) + " us") +
             ")";
      }
      const std::string& verdict = t.get("verdict").as_string();
      os << "| " << t.get("name").as_string() << " | "
         << t.get("kind").as_string() << " | " << sparkline(values)
         << (marks.empty() ? "" : " " + marks) << " | "
         << (is_host ? fmt(latest / 1e6, 3) + " ms" : fmt(latest, 1) + " us")
         << " | " << vs << " | "
         << (verdict == "REGRESSION" ? "**REGRESSION**" : verdict) << " |\n";
    }
    os << "\n";

    // Explain summaries: which (phase, level) cells moved each flagged
    // host tuple.
    for (const JsonValue& t : tuples.array()) {
      const JsonValue& ex = t.get("explain");
      if (ex.size() == 0) continue;
      os << "#### Explain: " << t.get("name").as_string() << " ("
         << t.get("verdict").as_string() << ")\n\n";
      os << "| phase | level | before_ms | after_ms | delta_ms | share % |\n";
      os << "|---|---:|---:|---:|---:|---:|\n";
      for (const JsonValue& c : ex.array()) {
        os << "| " << c.get("phase").as_string() << " | "
           << c.get("level").as_int() << " | "
           << fmt(c.get("before_ns").as_double() / 1e6, 3) << " | "
           << fmt(c.get("after_ns").as_double() / 1e6, 3) << " | "
           << fmt(c.get("delta_ns").as_double() / 1e6, 3) << " | "
           << fmt(c.get("share_pct").as_double(), 1) << " |\n";
      }
      os << "\n";
    }
  }

  const JsonValue& models = root.get("models");
  if (models.size() > 0) {
    os << "#### Model history\n\n";
    os << "| model | digest | accuracy | nodes | leaves | depth | "
          "verdict |\n";
    os << "|---|---|---:|---:|---:|---:|---|\n";
    for (const JsonValue& m : models.array()) {
      const std::string& verdict = m.get("verdict").as_string();
      os << "| " << m.get("name").as_string() << " | `"
         << m.get("digest").as_string().substr(0, 12) << "`";
      if (m.has("prev_digest") &&
          m.get("prev_digest").as_string() != m.get("digest").as_string()) {
        os << " (was `" << m.get("prev_digest").as_string().substr(0, 12)
           << "`)";
      }
      os << " | " << fmt(m.get("accuracy").as_double(), 4) << " | "
         << m.get("nodes").as_int() << " | " << m.get("leaves").as_int()
         << " | " << m.get("depth").as_int() << " | "
         << (verdict == "REGRESSION" ? "**REGRESSION**" : verdict) << " |\n";
    }
    os << "\n";
  }
}

}  // namespace

bool render_report(const std::vector<ReportInput>& inputs, std::ostream& os,
                   const RenderOptions& opt) {
  bool ok = true;
  for (const ReportInput& in : inputs) {
    const std::string& schema = in.root.get("schema").as_string();
    if (schema == "pdt-bench-v1") {
      render_bench(in, os, opt);
    } else if (schema == "pdt-metrics-v1") {
      os << "# Metrics report: `" << in.name << "`\n\n";
      if (opt.wants("metrics")) render_metrics(in.root, os);
    } else if (schema == "pdt-comm-v1") {
      os << "# Communication report: `" << in.name << "`\n\n";
      if (opt.wants("comm")) render_comm(in.root, os);
    } else if (schema == "pdt-mem-v1") {
      os << "# Memory report: `" << in.name << "`\n\n";
      if (opt.wants("memory")) render_mem(in.root, os);
    } else if (schema == "pdt-host-v1") {
      os << "# Host report: `" << in.name << "`\n\n";
      if (opt.wants("host")) render_host(in.root, os);
    } else if (schema == "pdt-threads-v1") {
      os << "# Concurrency report: `" << in.name << "`\n\n";
      if (opt.wants("threads")) render_threads(in.root, os);
    } else if (schema == "pdt-replay-v1") {
      if (opt.wants("replay")) {
        render_replay(in, os);
      } else {
        os << "# Replay report: `" << in.name << "`\n\n";
      }
    } else if (schema == "pdt-trend-v1") {
      if (opt.wants("trend")) {
        render_trend(in, os);
      } else {
        os << "# Trend report: `" << in.name << "`\n\n";
      }
    } else {
      os << "# Unrecognized report: `" << in.name << "`\n\n";
      os << "- schema: `" << (schema.empty() ? "(none)" : schema)
         << "` is not one of pdt-bench-v1 / pdt-metrics-v1 / pdt-comm-v1 / "
            "pdt-mem-v1 / pdt-host-v1 / pdt-threads-v1 / pdt-replay-v1 / "
            "pdt-trend-v1\n\n";
      ok = false;
    }
  }
  return ok;
}

bool render_report(const std::vector<ReportInput>& inputs, std::ostream& os) {
  return render_report(inputs, os, RenderOptions{});
}

}  // namespace pdt::tools
