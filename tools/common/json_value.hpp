// Minimal JSON document model + parser for the offline pdt-report tool.
//
// The tool must ingest pdt-bench-v1 / pdt-metrics-v1 / pdt-comm-v1 files
// without linking the simulator libraries, so this is a deliberately
// small, dependency-free reader: recursive descent over the full JSON
// grammar (RFC 8259), objects kept in insertion order (the reports are
// written deterministically, and the rendered markdown must be too).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdt::tools {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Typed reads with a fallback for wrong-typed / missing values, so the
  /// renderer can be written without defensive branching everywhere.
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string empty;
    return is_string() ? str_ : empty;
  }

  [[nodiscard]] std::size_t size() const {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }
  /// Array element (the shared null value when out of range / not an
  /// array).
  [[nodiscard]] const JsonValue& at(std::size_t i) const {
    return is_array() && i < arr_.size() ? arr_[i] : null_value();
  }
  /// Object member by key (the shared null value when absent). Chains:
  /// root.get("critical_path").get("max_clock_us").as_double().
  [[nodiscard]] const JsonValue& get(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return &get(key) != &null_value();
  }

  [[nodiscard]] const std::vector<JsonValue>& array() const {
    static const std::vector<JsonValue> empty;
    return is_array() ? arr_ : empty;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& object()
      const {
    static const std::vector<std::pair<std::string, JsonValue>> empty;
    return is_object() ? obj_ : empty;
  }

  [[nodiscard]] static const JsonValue& null_value();

 private:
  friend class JsonParser;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parse `text` into `*out`. On failure returns false and, when `error`
/// is non-null, fills it with a message including the byte offset.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue* out,
                              std::string* error = nullptr);

/// Shortest decimal representation that strtod()s back to the identical
/// double, so values written by the tools round-trip losslessly through
/// this parser (non-finite values become "null" to stay valid JSON).
[[nodiscard]] std::string json_double_exact(double v);

/// Minimal JSON string escaping (quote, backslash, control characters).
[[nodiscard]] std::string json_escaped(std::string_view s);

/// Serialize a parsed value back to compact JSON (no whitespace).
/// Deterministic: objects keep insertion order, doubles round-trip via
/// json_double_exact — pdt-trend uses this to copy fingerprint objects
/// verbatim from envelopes into registry records.
[[nodiscard]] std::string json_serialize(const JsonValue& v);

}  // namespace pdt::tools
