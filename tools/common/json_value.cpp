#include "common/json_value.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pdt::tools {

const JsonValue& JsonValue::null_value() {
  static const JsonValue v;
  return v;
}

const JsonValue& JsonValue::get(std::string_view key) const {
  if (is_object()) {
    for (const auto& [k, v] : obj_) {
      if (k == key) return v;
    }
  }
  return null_value();
}

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return true;
  }

 private:
  // Nesting bound: the reports nest a handful of levels; 200 keeps a
  // malformed/adversarial file from overflowing the parser's stack.
  static constexpr int kMaxDepth = 200;

  bool fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        out->type_ = JsonValue::Type::Null;
        return expect_literal("null");
      case 't':
        out->type_ = JsonValue::Type::Bool;
        out->bool_ = true;
        return expect_literal("true");
      case 'f':
        out->type_ = JsonValue::Type::Bool;
        out->bool_ = false;
        return expect_literal("false");
      case '"':
        out->type_ = JsonValue::Type::String;
        return parse_string(&out->str_);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      // Some emitters write bare IEEE specials; RFC 8259 forbids them, and
      // accepting them would poison every aggregate downstream. Name them
      // in the error instead of a generic "expected a value".
      case 'N':
      case 'I':
        return fail("NaN/Infinity literals are not valid JSON");
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (!eof() && (peek() == 'N' || peek() == 'I')) {
      pos_ = start;
      return fail("NaN/Infinity literals are not valid JSON");
    }
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' ||
                      peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    // strtod saturates overflows to +-HUGE_VAL; letting an infinity in
    // here would defeat the literal rejection above.
    if (!std::isfinite(d)) {
      pos_ = start;
      return fail("number out of range");
    }
    out->type_ = JsonValue::Type::Number;
    out->num_ = d;
    return true;
  }

  static void append_utf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          // Surrogate pairs (rare in our files, but be correct).
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              const unsigned full =
                  0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              s_append_utf8_4(out, full);
              break;
            }
            append_utf8(out, cp);
            append_utf8(out, lo);
            break;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
  }

  static void s_append_utf8_4(std::string* s, unsigned cp) {
    s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::Array;
    out->arr_.clear();  // the caller may reuse a JsonValue across parses
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue elem;
      skip_ws();
      if (!parse_value(&elem, depth + 1)) return false;
      out->arr_.push_back(std::move(elem));
      skip_ws();
      if (eof()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']' in array");
      }
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::Object;
    out->obj_.clear();  // the caller may reuse a JsonValue across parses
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      // get() returns the first match, so a duplicate would silently
      // shadow later data; our writers never emit one, so it marks a
      // corrupt or hand-edited file.
      for (const auto& [k, v] : out->obj_) {
        if (k == key) {
          return fail("duplicate object key \"" + key + "\"");
        }
      }
      skip_ws();
      if (eof() || text_[pos_] != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue val;
      if (!parse_value(&val, depth + 1)) return false;
      out->obj_.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (eof()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  JsonParser p(text, error);
  return p.parse(out);
}

std::string json_double_exact(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return std::string(buf);
}

std::string json_serialize(const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::Null:
      return "null";
    case JsonValue::Type::Bool:
      return v.as_bool() ? "true" : "false";
    case JsonValue::Type::Number:
      return json_double_exact(v.as_double());
    case JsonValue::Type::String:
      return "\"" + json_escaped(v.as_string()) + "\"";
    case JsonValue::Type::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) out += ",";
        out += json_serialize(v.at(i));
      }
      return out + "]";
    }
    case JsonValue::Type::Object: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, val] : v.object()) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escaped(k) + "\":" + json_serialize(val);
      }
      return out + "}";
    }
  }
  return "null";
}

std::string json_escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace pdt::tools

