#include "common/cli.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(_WIN32)
#include <process.h>
#define PDT_TOOLS_GETPID _getpid
#else
#include <unistd.h>
#define PDT_TOOLS_GETPID getpid
#endif

namespace pdt::tools {

int usage(const CliSpec& spec) {
  std::fputs(spec.usage, stderr);
  return kExitUsage;
}

bool standard_flag(const CliSpec& spec, std::string_view arg,
                   int* exit_code) {
  if (arg == "-h" || arg == "--help") {
    std::fputs(spec.usage, stdout);
    *exit_code = kExitOk;
    return true;
  }
  if (arg == "--version") {
    std::printf("%s %s\n", spec.tool, kToolsVersion);
    *exit_code = kExitOk;
    return true;
  }
  return false;
}

bool load_json_file(const CliSpec& spec, const std::string& path,
                    JsonValue* root) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "%s: cannot open %s\n", spec.tool, path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string error;
  if (!json_parse(buf.str(), root, &error)) {
    std::fprintf(stderr, "%s: %s: %s\n", spec.tool, path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

bool write_file_atomic(const CliSpec& spec, const std::string& path,
                       const std::string& content) {
  const std::string tmp =
      path + ".tmp" + std::to_string(PDT_TOOLS_GETPID());
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (os) os << content << std::flush;
    if (!os) {
      std::fprintf(stderr, "%s: cannot write %s\n", spec.tool, path.c_str());
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "%s: cannot write %s\n", spec.tool, path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace pdt::tools
