// Shared command-line plumbing for the offline tools (pdt-report,
// pdt-diff, pdt-replay, pdt-trend): one exit-code convention, uniform
// --help/--version handling, and the hardened load-and-parse step every
// tool performs on its JSON inputs.
//
// Exit-code contract (tested, and relied on by CI):
//   0  success
//   1  gate/verdict failure (regression past tolerance, replay clock
//      mismatch, unrecognized schema) or failure to write output
//   2  usage error, unreadable input, or JSON parse error
#pragma once

#include <string>
#include <string_view>

#include "common/json_value.hpp"

namespace pdt::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFail = 1;
inline constexpr int kExitUsage = 2;

/// One version string for the whole tool suite, bumped with the schemas.
inline constexpr const char* kToolsVersion = "0.10.0";

struct CliSpec {
  const char* tool;   ///< binary name, e.g. "pdt-report"
  const char* usage;  ///< full usage text, newline-terminated
};

/// Print the usage text to stderr; returns kExitUsage so call sites can
/// `return usage(spec);`.
int usage(const CliSpec& spec);

/// Uniform handling of -h/--help/--version. Returns true when `arg` was
/// one of them; `*exit_code` is then the code to exit with (kExitOk).
bool standard_flag(const CliSpec& spec, std::string_view arg, int* exit_code);

/// Read and parse the JSON file at `path` into `*root`. On failure
/// prints "<tool>: <path>: <why>" to stderr and returns false (the
/// caller should exit kExitUsage — bad input, not a failed gate).
bool load_json_file(const CliSpec& spec, const std::string& path,
                    JsonValue* root);

/// Write `content` to `path` crash-safely: stream to `<path>.tmp<pid>`,
/// then rename onto the final path (the tools-side mirror of
/// obs::AtomicFile — the tools deliberately do not link the simulator
/// libraries). On failure prints "<tool>: cannot write <path>" to stderr,
/// removes the temp, and returns false (callers exit kExitFail — output,
/// not input, failed).
bool write_file_atomic(const CliSpec& spec, const std::string& path,
                       const std::string& content);

}  // namespace pdt::tools
