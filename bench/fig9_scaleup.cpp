// Figure 9: scaleup of the hybrid formulation — the per-processor dataset
// is held at 50,000 examples (scaled by PDT_SCALE) while the machine
// grows. Ideal scaleup is a horizontal line; the measured curve rises
// slightly because the isoefficiency function is Theta(P log P), not
// Theta(P) (Section 4.3).
#include "bench_util.hpp"
#include "core/cost_analysis.hpp"

using namespace pdt;

int main() {
  bench::header("Figure 9", "scaleup: 50,000 examples per processor");
  bench::BenchReport rep("fig9_scaleup");
  const std::size_t per_proc = bench::scaled(50000.0);
  std::printf("\nper-processor examples (scaled): %zu\n\n", per_proc);

  obs::JsonWriter* w = rep.writer();
  if (w != nullptr) {
    w->begin_object();
    w->kv("type", "scaleup");
    w->kv("per_proc_n", static_cast<std::int64_t>(per_proc));
    w->key("points").begin_array();
  }
  std::printf("%6s %10s %14s %14s %10s %12s\n", "P", "N", "runtime(ms)",
              "vs P=1", "splits", "peak KiB/P");
  double base_time = 0.0;
  for (const int p : {1, 2, 4, 8, 16, 32, 64}) {
    const std::size_t n = per_proc * static_cast<std::size_t>(p);
    const data::Dataset ds = data::quest_generate(
        n, {.function = 2, .seed = 77});
    core::ParOptions opt = bench::fig8_options();
    opt.num_procs = p;
    const core::ParResult res =
        p == 1 ? core::build_serial(ds, opt) : core::build_hybrid(ds, opt);
    if (p == 1) base_time = res.parallel_time;
    std::printf("%6d %10zu %14.1f %13.2fx %10d %12.0f\n", p, n,
                res.parallel_time / 1000.0, res.parallel_time / base_time,
                res.partition_splits,
                static_cast<double>(bench::max_rank_peak(res.mem)) / 1024.0);
    if (w != nullptr) {
      w->begin_object();
      w->kv("procs", p);
      w->kv("n", static_cast<std::int64_t>(n));
      w->kv("time_us", res.parallel_time);
      w->kv("vs_p1", res.parallel_time / base_time);
      w->kv("splits", res.partition_splits);
      w->key("mem");
      obs::write_mem(*w, res.mem, &res.mem_predicted);
      w->end_object();
    }
  }
  std::printf("(peak KiB/P near-constant == per-processor memory holds at "
              "N/P fixed; the Section 4 scalability claim)\n");
  if (w != nullptr) {
    w->end_array();
    w->end_object();
  }

  std::printf("\nisoefficiency check (Section 4.3): records needed for "
              "80%% efficiency\n");
  core::AnalysisInput in;
  in.A_d = 9;
  in.C = 2;
  in.M = 16;
  in.L1 = 24;
  std::printf("%6s %16s %18s\n", "P", "N(E=0.8)", "N / (P log2 P)");
  for (const int p : {2, 4, 8, 16, 32, 64, 128}) {
    const double n = core::isoefficiency_records(in, p, 0.8);
    std::printf("%6d %16.0f %18.1f\n", p, n,
                n / (p * mpsim::ceil_log2(p)));
  }
  std::printf("(constant last column == Theta(P log P) isoefficiency)\n");
  return 0;
}
