// Google-benchmark micro-benchmarks of the substrates: real wall-clock
// performance of the pieces the simulation executes (histogram updates,
// split selection, generator throughput, classification, collectives).
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/builder.hpp"
#include "dtree/histogram.hpp"
#include "dtree/metrics.hpp"
#include "dtree/prune.hpp"

using namespace pdt;

namespace {

const data::Dataset& quest_raw() {
  static const data::Dataset ds =
      data::quest_generate(50000, {.function = 2, .seed = 1});
  return ds;
}

const data::Dataset& quest_binned() {
  static const data::Dataset ds =
      data::discretize_uniform(quest_raw(), data::quest_paper_bins());
  return ds;
}

void BM_QuestGenerate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::quest_generate(n, {.seed = 3}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuestGenerate)->Arg(1000)->Arg(10000);

void BM_HistogramAccumulate(benchmark::State& state) {
  const data::Dataset& ds = quest_binned();
  const dtree::SlotMapper mapper(ds, 32);
  const dtree::AttrLayout layout(ds.schema(), 32);
  std::vector<data::RowId> rows(static_cast<std::size_t>(state.range(0)));
  std::iota(rows.begin(), rows.end(), data::RowId{0});
  dtree::Hist h(static_cast<std::size_t>(layout.total()));
  for (auto _ : state) {
    std::fill(h.begin(), h.end(), 0);
    dtree::accumulate(h, layout, mapper, rows);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 9);
}
BENCHMARK(BM_HistogramAccumulate)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ChooseSplit(benchmark::State& state) {
  const data::Dataset& ds = quest_binned();
  const dtree::SlotMapper mapper(ds, 32);
  const dtree::AttrLayout layout(ds.schema(), 32);
  std::vector<data::RowId> rows(ds.num_rows());
  std::iota(rows.begin(), rows.end(), data::RowId{0});
  dtree::Hist h(static_cast<std::size_t>(layout.total()), 0);
  dtree::accumulate(h, layout, mapper, rows);
  const dtree::GrowOptions opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dtree::choose_split(h, layout, ds.schema(), mapper, opt));
  }
}
BENCHMARK(BM_ChooseSplit);

void BM_SerialGrowBfs(benchmark::State& state) {
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(static_cast<std::size_t>(state.range(0)),
                           {.seed = 5}),
      data::quest_paper_bins());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtree::grow_bfs(ds, dtree::GrowOptions{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SerialGrowBfs)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_GrowVsPrune(benchmark::State& state) {
  // Supports the paper's "pruning is <1% of construction" remark.
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(20000, {.seed = 6}), data::quest_paper_bins());
  const dtree::Tree grown = dtree::grow_bfs(ds, dtree::GrowOptions{});
  for (auto _ : state) {
    dtree::Tree t = grown;
    benchmark::DoNotOptimize(dtree::prune(t));
  }
}
BENCHMARK(BM_GrowVsPrune);

void BM_Classify(benchmark::State& state) {
  const data::Dataset& ds = quest_binned();
  const dtree::Tree tree = dtree::grow_bfs(ds, dtree::GrowOptions{});
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.classify(ds, row));
    row = (row + 1) % ds.num_rows();
  }
}
BENCHMARK(BM_Classify);

void BM_SimulatedHybrid(benchmark::State& state) {
  // Host cost of simulating one full hybrid run (the figure harnesses'
  // unit of work).
  const data::Dataset ds = data::discretize_uniform(
      data::quest_generate(static_cast<std::size_t>(state.range(0)),
                           {.seed = 7}),
      data::quest_paper_bins());
  core::ParOptions opt;
  opt.num_procs = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_hybrid(ds, opt));
  }
}
BENCHMARK(BM_SimulatedHybrid)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_AllReduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  mpsim::Machine m(p);
  const mpsim::Group g = mpsim::Group::whole(m);
  std::vector<std::vector<std::int64_t>> bufs(
      static_cast<std::size_t>(p), std::vector<std::int64_t>(216, 1));
  std::vector<std::int64_t*> ptrs;
  for (auto& b : bufs) ptrs.push_back(b.data());
  for (auto _ : state) {
    g.all_reduce_sum(ptrs, 216);
    benchmark::DoNotOptimize(bufs[0].data());
  }
}
BENCHMARK(BM_AllReduce)->Arg(4)->Arg(16)->Arg(128);

void BM_KMeansBoundaries(benchmark::State& state) {
  std::vector<data::WeightedValue> vals;
  for (int i = 0; i < 64; ++i) {
    vals.push_back({static_cast<double>(i), 1.0 + (i * 7) % 5});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::kmeans_boundaries(vals, 8));
  }
}
BENCHMARK(BM_KMeansBoundaries);

}  // namespace

BENCHMARK_MAIN();
