// Ablation: the hybrid's design choices — intra-subcube load balancing,
// idle-partition rejoin, split criterion, and the machine's communication
// cost. Shows each feature's contribution to the headline Figure 6/8
// behaviour.
#include "bench_util.hpp"

using namespace pdt;

namespace {

void row(const char* label, const data::Dataset& ds,
         const core::ParOptions& opt, double serial_time) {
  const core::ParResult res = core::build_hybrid(ds, opt);
  std::printf("%-34s %12.1f %9.2f %8d %8d %10lld\n", label,
              res.parallel_time / 1000.0, serial_time / res.parallel_time,
              res.partition_splits, res.rejoins,
              static_cast<long long>(res.records_moved));
}

}  // namespace

int main() {
  bench::header("Ablation", "hybrid design choices at P = 16");
  const std::size_t n = bench::scaled(0.8e6);
  const data::Dataset ds = bench::fig6_workload(n, 6);
  core::ParOptions base;
  base.num_procs = 16;
  const double serial = core::build_serial(ds, base).parallel_time;
  std::printf("\nworkload: N = %zu | serial %.1f ms\n\n", n, serial / 1000.0);

  std::printf("%-34s %12s %9s %8s %8s %10s\n", "configuration", "time(ms)",
              "speedup", "splits", "rejoins", "moved");

  row("full hybrid (paper)", ds, base, serial);

  core::ParOptions no_lb = base;
  no_lb.load_balance = false;
  row("  - load balancing off", ds, no_lb, serial);

  core::ParOptions no_rejoin = base;
  no_rejoin.rejoin_idle = false;
  row("  - idle rejoin off", ds, no_rejoin, serial);

  core::ParOptions neither = base;
  neither.load_balance = false;
  neither.rejoin_idle = false;
  row("  - both off", ds, neither, serial);

  core::ParOptions gini = base;
  gini.grow.criterion = dtree::Criterion::Gini;
  row("  gini criterion", ds, gini, serial);

  core::ParOptions cheap = base;
  cheap.cost = mpsim::CostModel::cheap_comm();
  const double cheap_serial = core::build_serial(ds, cheap).parallel_time;
  row("  100x cheaper network", ds, cheap, cheap_serial);

  core::ParOptions zero = base;
  zero.cost = mpsim::CostModel::zero_comm();
  const double zero_serial = core::build_serial(ds, zero).parallel_time;
  row("  free communication (PRAM-ish)", ds, zero, zero_serial);

  std::printf("\n(speedups for the cheaper networks use their own serial "
              "baselines)\n");
  return 0;
}
