// Isoefficiency grid (Section 4.3): record fully-instrumented hybrid
// runs over a (P, N) grid — plus the P=1 serial baseline at every N —
// each with its complete pdt-events-v1 execution log, so that
//
//   pdt-replay --iso --efficiency 0.8 isoefficiency.*.events.json
//
// can chart the *measured* isoefficiency curve (the N at which each P
// reaches the target efficiency, interpolated from the grid) against
// the analytic N = E/(1-E) * iso_c * P log2 P. The calibrated constant
// iso_c = c_comm/c_comp rides along in every log's meta.
//
// Also prints the measured efficiency table and the analytic curve
// directly, and emits an {"type":"iso_grid",...} section in
// isoefficiency.json.
#include "bench_util.hpp"
#include "core/cost_analysis.hpp"

using namespace pdt;

namespace {

core::AnalysisInput fig6_analysis() {
  core::AnalysisInput in;
  in.A_d = 9;
  in.C = 2;
  in.M = 12;
  in.L1 = 24;
  return in;
}

}  // namespace

int main() {
  bench::header("Isoefficiency", "efficiency over a (P, N) grid, hybrid");
  bench::BenchReport rep("isoefficiency");

  const std::vector<double> paper_ns{0.1e6, 0.2e6, 0.4e6, 0.8e6};
  const std::vector<int> procs{2, 4, 8};
  const double iso_c = core::isoefficiency_constant(fig6_analysis());
  std::printf("calibrated iso_c = c_comm/c_comp = %.4f\n\n", iso_c);

  // serial_time[i] is the P=1 virtual runtime at paper_ns[i].
  std::vector<double> serial_time;
  std::vector<std::vector<double>> time_at;  // [p index][n index]
  time_at.assign(procs.size(), {});

  for (std::size_t ni = 0; ni < paper_ns.size(); ++ni) {
    const std::size_t n = bench::scaled(paper_ns[ni]);
    const data::Dataset ds = bench::fig6_workload(n, 1 + ni);
    char tag[48];

    const bench::ModelInfo model{.train_seed = 1 + ni, .paper_bins = true};

    std::snprintf(tag, sizeof tag, "serial.N%zu", n);
    core::ParOptions sopt;
    sopt.num_procs = 1;
    const core::ParResult serial = bench::run_instrumented(
        rep, tag, core::Formulation::Sync, ds, sopt, iso_c, &model);
    serial_time.push_back(serial.parallel_time);

    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      std::snprintf(tag, sizeof tag, "hybrid.P%d.N%zu", procs[pi], n);
      core::ParOptions opt;
      opt.num_procs = procs[pi];
      const core::ParResult res = bench::run_instrumented(
          rep, tag, core::Formulation::Hybrid, ds, opt, iso_c, &model);
      time_at[pi].push_back(res.parallel_time);
    }
  }

  std::printf("\nmeasured efficiency (hybrid, serial/(P*T)):\n%-10s", "N \\ P");
  for (const int p : procs) std::printf(" %8d", p);
  std::printf("\n");
  for (std::size_t ni = 0; ni < paper_ns.size(); ++ni) {
    std::printf("%-10zu", bench::scaled(paper_ns[ni]));
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      std::printf(" %8.3f", serial_time[ni] / (procs[pi] * time_at[pi][ni]));
    }
    std::printf("\n");
  }

  const double target = 0.8;
  core::AnalysisInput in = fig6_analysis();
  std::printf("\nanalytic isoefficiency (N to hold E=%.2f):\n", target);
  for (const int p : procs) {
    std::printf("  P=%-3d N = %.0f records\n", p,
                core::isoefficiency_records(in, p, target));
  }
  std::printf("(replay the recorded grid: pdt-replay --iso --efficiency "
              "%.2f isoefficiency.*.events.json)\n", target);

  if (obs::JsonWriter* w = rep.writer()) {
    w->begin_object();
    w->kv("type", "iso_grid");
    w->kv("formulation", "hybrid");
    w->kv("iso_c", iso_c);
    w->key("points").begin_array();
    for (std::size_t ni = 0; ni < paper_ns.size(); ++ni) {
      for (std::size_t pi = 0; pi < procs.size(); ++pi) {
        w->begin_object();
        w->kv("n", static_cast<std::int64_t>(bench::scaled(paper_ns[ni])));
        w->kv("procs", procs[pi]);
        w->kv("time_us", time_at[pi][ni]);
        w->kv("serial_us", serial_time[ni]);
        w->kv("efficiency",
              serial_time[ni] / (procs[pi] * time_at[pi][ni]));
        w->end_object();
      }
    }
    w->end_array();
    w->end_object();
  }
  return 0;
}
