// Related-work comparison (Section 2.2): the paper's three formulations
// against the parallelization schemes it surveys — DP-att / Pearson's
// attribute partitioning, Kufrin's PDT host-worker scheme, parallel
// SPRINT with the replicated hash table, and ScalParC's distributed hash
// table. One table per processor count; plus the memory/traffic profile
// that makes parallel SPRINT unscalable.
#include "bench_util.hpp"

#include "alist/parallel.hpp"
#include "core/baselines.hpp"

using namespace pdt;

int main() {
  bench::header("Related work", "all parallelization schemes, same workload");
  bench::BenchReport rep("baselines_comparison");
  const std::size_t n = bench::scaled(0.8e6);
  const data::Dataset binned = bench::fig6_workload(n, 9);
  const data::Dataset raw =
      data::quest_generate(n, {.function = 2, .seed = 9});

  core::ParOptions base;
  const double serial = core::build_serial(binned, base).parallel_time;
  std::printf("\nworkload: N = %zu (discrete attributes) | serial %.1f ms\n",
              n, serial / 1000.0);

  std::printf("\nspeedup over serial:\n%-28s", "scheme \\ P");
  const std::vector<int> procs{2, 4, 8, 16};
  for (const int p : procs) std::printf(" %8d", p);
  std::printf("\n");

  obs::JsonWriter* w = rep.writer();
  if (w != nullptr) {
    w->begin_object();
    w->kv("type", "speedup_table");
    w->kv("n", static_cast<std::int64_t>(n));
    w->kv("serial_time_us", serial);
    w->key("rows").begin_array();
  }
  auto row = [&](const char* name, auto&& build) {
    std::printf("%-28s", name);
    if (w != nullptr) {
      w->begin_object();
      w->kv("scheme", name);
      w->key("points").begin_array();
    }
    for (const int p : procs) {
      core::ParOptions opt;
      opt.num_procs = p;
      const double t = build(opt).parallel_time;
      std::printf(" %8.2f", serial / t);
      if (w != nullptr) {
        w->begin_object();
        w->kv("procs", p);
        w->kv("time_us", t);
        w->kv("speedup", serial / t);
        w->end_object();
      }
    }
    std::printf("\n");
    if (w != nullptr) {
      w->end_array();
      w->end_object();
    }
  };
  row("synchronous (DP-rec)", [&](const core::ParOptions& o) {
    return core::build_sync(binned, o);
  });
  row("attribute part. (DP-att)", [&](const core::ParOptions& o) {
    return core::build_vertical(binned, o);
  });
  row("host-worker (PDT)", [&](const core::ParOptions& o) {
    return core::build_host_worker(binned, o);
  });
  row("partitioned", [&](const core::ParOptions& o) {
    return core::build_partitioned(binned, o);
  });
  row("hybrid (this paper)", [&](const core::ParOptions& o) {
    return core::build_hybrid(binned, o);
  });
  if (w != nullptr) {
    w->end_array();
    w->end_object();
  }

  // Attribute-list algorithms run on the raw continuous data with exact
  // thresholds; their baseline is their own 1-processor run.
  std::printf("\nattribute-list algorithms (exact thresholds, raw data):\n");
  alist::ParallelSprintOptions aopt;
  aopt.grow.max_depth = 14;
  aopt.num_procs = 1;
  const double aserial = alist::build_parallel_sprint(raw, aopt).parallel_time;
  std::printf("serial presorted scan: %.1f ms\n", aserial / 1000.0);
  std::printf("%-28s", "scheme \\ P");
  for (const int p : procs) std::printf(" %8d", p);
  std::printf("\n");
  for (const auto& [scheme, name] :
       {std::pair{alist::HashTableScheme::ReplicatedSprint,
                  "parallel SPRINT (repl.)"},
        std::pair{alist::HashTableScheme::DistributedScalParC,
                  "ScalParC (distributed)"}}) {
    std::printf("%-28s", name);
    for (const int p : procs) {
      alist::ParallelSprintOptions o = aopt;
      o.scheme = scheme;
      o.num_procs = p;
      std::printf(" %8.2f",
                  aserial / alist::build_parallel_sprint(raw, o).parallel_time);
    }
    std::printf("\n");
  }

  std::printf("\nper-processor footprint and total hash traffic at P=16:\n"
              "%-28s %14s %14s %14s\n", "scheme", "hash KiB/proc",
              "peak KiB/proc", "traffic(words)");
  if (w != nullptr) {
    w->begin_object();
    w->kv("type", "mem_contrast");
    w->kv("procs", 16);
    w->key("rows").begin_array();
  }
  for (const auto& [scheme, name] :
       {std::pair{alist::HashTableScheme::ReplicatedSprint,
                  "parallel SPRINT (repl.)"},
        std::pair{alist::HashTableScheme::DistributedScalParC,
                  "ScalParC (distributed)"}}) {
    alist::ParallelSprintOptions o = aopt;
    o.scheme = scheme;
    o.num_procs = 16;
    const auto res = alist::build_parallel_sprint(raw, o);
    std::int64_t hash_peak = 0;
    std::int64_t total_peak = 0;
    for (const mpsim::MemStats& m : res.mem) {
      hash_peak =
          std::max(hash_peak, m.peak_for(mpsim::MemTag::HashTable));
      total_peak = std::max(total_peak, m.peak_total);
    }
    std::printf("%-28s %14.0f %14.0f %14.0f\n", name,
                static_cast<double>(hash_peak) / 1024.0,
                static_cast<double>(total_peak) / 1024.0,
                res.hash_comm_words);
    if (w != nullptr) {
      w->begin_object();
      w->kv("scheme", name);
      w->kv("hash_comm_words", res.hash_comm_words);
      w->key("mem");
      obs::write_mem(*w, res.mem);
      w->end_object();
    }
  }
  if (w != nullptr) {
    w->end_array();
    w->end_object();
  }
  std::printf("\n(the O(N) replicated table is the unscalability the paper "
              "criticizes; ScalParC's distributed table is O(N/P))\n");
  return 0;
}
