// Figure 6: speedup comparison of the three parallel formulations on
// function-2 data with uniformly discretized attributes, for 0.8M and
// 1.6M training cases (scaled by PDT_SCALE) on 1..16 processors.
//
// Expected shape (paper): the synchronous approach speeds up at P=2 but
// flattens or degrades for P>=4; the partitioned approach does better but
// loses efficiency at 8-16; the hybrid keeps improving and dominates.
#include "bench_util.hpp"
#include "core/cost_analysis.hpp"

using namespace pdt;

namespace {

void run_size(double paper_n, std::uint64_t seed) {
  const std::size_t n = bench::scaled(paper_n);
  std::printf("\n--- %.1fM paper-scale examples (simulated with N = %zu) ---\n",
              paper_n / 1e6, n);
  const data::Dataset ds = bench::fig6_workload(n, seed);
  const std::vector<int> procs{1, 2, 4, 8, 16};

  core::ParOptions base;
  std::printf("%-13s", "speedup at P:");
  for (const int p : procs) std::printf(" %8d", p);
  std::printf("\n");

  int tree_nodes = 0;
  for (const core::Formulation f :
       {core::Formulation::Sync, core::Formulation::Partitioned,
        core::Formulation::Hybrid}) {
    const auto series = core::speedup_series(f, ds, base, procs);
    std::printf("%-13s", core::to_string(f));
    for (const auto& pt : series) std::printf(" %8.2f", pt.speedup);
    std::printf("\n");
    tree_nodes = series.front().result.tree.num_nodes();
  }
  std::printf("(tree: %d nodes)\n", tree_nodes);

  // The Section-4 model at the paper's full scale, for comparison.
  core::AnalysisInput in;
  in.N = paper_n;
  in.A_d = 9;
  in.C = 2;
  in.M = 12;
  in.L1 = 24;
  std::printf("%-13s", "model hybrid:");
  for (const int p : procs) {
    in.P = p;
    std::printf(" %8.2f", core::predicted_serial_time(in) /
                              core::predicted_hybrid_time(in, 10.0));
  }
  std::printf("  (closed-form, full %.1fM records)\n", paper_n / 1e6);
  std::printf("%-13s", "model sync:");
  for (const int p : procs) {
    in.P = p;
    std::printf(" %8.2f", core::predicted_serial_time(in) /
                              core::predicted_sync_time(in));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Figure 6", "speedup of the three parallel formulations");
  run_size(0.8e6, 1);
  run_size(1.6e6, 2);
  return 0;
}
