// Figure 6: speedup comparison of the three parallel formulations on
// function-2 data with uniformly discretized attributes, for 0.8M and
// 1.6M training cases (scaled by PDT_SCALE) on 1..16 processors.
//
// Expected shape (paper): the synchronous approach speeds up at P=2 but
// flattens or degrades for P>=4; the partitioned approach does better but
// loses efficiency at 8-16; the hybrid keeps improving and dominates.
//
// Also emits fig6_speedup.json (pdt-bench-v1) and, per formulation, a
// Perfetto trace of an instrumented P=8 run on the smaller workload.
#include <tuple>

#include "bench_util.hpp"
#include "core/cost_analysis.hpp"

using namespace pdt;

namespace {

void run_size(bench::BenchReport& rep, double paper_n, std::uint64_t seed) {
  const std::size_t n = bench::scaled(paper_n);
  std::printf("\n--- %.1fM paper-scale examples (simulated with N = %zu) ---\n",
              paper_n / 1e6, n);
  const data::Dataset ds = bench::fig6_workload(n, seed);
  const std::vector<int> procs{1, 2, 4, 8, 16};
  char workload[32];
  std::snprintf(workload, sizeof workload, "%.1fM", paper_n / 1e6);

  core::ParOptions base;
  std::printf("%-13s", "speedup at P:");
  for (const int p : procs) std::printf(" %8d", p);
  std::printf("\n");

  int tree_nodes = 0;
  for (const core::Formulation f :
       {core::Formulation::Sync, core::Formulation::Partitioned,
        core::Formulation::Hybrid}) {
    const auto series = core::speedup_series(f, ds, base, procs);
    std::printf("%-13s", core::to_string(f));
    for (const auto& pt : series) std::printf(" %8.2f", pt.speedup);
    std::printf("\n%-13s", "  peak KiB/P:");
    for (const auto& pt : series) {
      std::printf(" %8.0f",
                  static_cast<double>(bench::max_rank_peak(pt.result.mem)) /
                      1024.0);
    }
    std::printf("\n");
    tree_nodes = series.front().result.tree.num_nodes();
    bench::emit_speedup_series(rep, workload, core::to_string(f), series);
    bench::emit_mem_scaling(rep, workload, core::to_string(f), series);
  }
  std::printf("(tree: %d nodes; peak KiB/P = largest per-rank memory "
              "footprint, Section 4's O(N/P) term)\n", tree_nodes);

  // The Section-4 model at the paper's full scale, for comparison.
  core::AnalysisInput in;
  in.N = paper_n;
  in.A_d = 9;
  in.C = 2;
  in.M = 12;
  in.L1 = 24;
  std::printf("%-13s", "model hybrid:");
  for (const int p : procs) {
    in.P = p;
    std::printf(" %8.2f", core::predicted_serial_time(in) /
                              core::predicted_hybrid_time(in, 10.0));
  }
  std::printf("  (closed-form, full %.1fM records)\n", paper_n / 1e6);
  std::printf("%-13s", "model sync:");
  for (const int p : procs) {
    in.P = p;
    std::printf(" %8.2f", core::predicted_serial_time(in) /
                              core::predicted_sync_time(in));
  }
  std::printf("\n");
}

// One fully-instrumented P=8 run per formulation on the smaller workload:
// the JSON report gets the per-phase x per-level time breakdown plus the
// load-imbalance factors, and each run dumps a Perfetto trace.
void instrumented_runs(bench::BenchReport& rep, double paper_n,
                       std::uint64_t seed) {
  const data::Dataset ds = bench::fig6_workload(bench::scaled(paper_n), seed);
  std::printf("\n--- instrumented P=8 runs (%.1fM paper-scale) ---\n",
              paper_n / 1e6);
  // hybrid.P1 anchors the host-time speedup table (pdt-report needs at
  // least two P values of one formulation to form a host-ns ratio).
  for (const auto& [f, procs, tag] :
       {std::tuple{core::Formulation::Sync, 8, "sync.P8"},
        std::tuple{core::Formulation::Partitioned, 8, "partitioned.P8"},
        std::tuple{core::Formulation::Hybrid, 8, "hybrid.P8"},
        std::tuple{core::Formulation::Hybrid, 1, "hybrid.P1"}}) {
    core::ParOptions opt;
    opt.num_procs = procs;
    const bench::ModelInfo model{.train_seed = seed, .paper_bins = true};
    const core::ParResult res =
        bench::run_instrumented(rep, tag, f, ds, opt, 0.0, &model);
    std::printf("%-13s P=%d %10.1f ms\n", core::to_string(f), procs,
                res.parallel_time / 1000.0);
  }
}

}  // namespace

int main() {
  bench::header("Figure 6", "speedup of the three parallel formulations");
  bench::BenchReport rep("fig6_speedup");
  run_size(rep, 0.8e6, 1);
  run_size(rep, 1.6e6, 2);
  instrumented_runs(rep, 0.8e6, 1);
  return 0;
}
