// Figure 8: speedup of the hybrid formulation on up to 128 processors for
// several dataset sizes, using the original continuous attributes with
// SPEC-style clustering discretization at every tree node (Section 3.4).
//
// Expected shape (paper): speedup keeps climbing with P for every size;
// larger datasets sustain higher efficiency (the N = Theta(P log P)
// isoefficiency at work).
#include "bench_util.hpp"
#include "core/cost_analysis.hpp"

using namespace pdt;

int main() {
  bench::header("Figure 8",
                "hybrid speedup with per-node clustering discretization");
  bench::BenchReport rep("fig8_hybrid_speedup");
  const std::vector<int> procs{1, 2, 4, 8, 16, 32, 64, 128};
  const double paper_sizes[] = {0.2e6, 0.4e6, 0.8e6, 1.6e6};

  std::printf("\n%-24s", "speedup at P:");
  for (const int p : procs) std::printf(" %7d", p);
  std::printf("\n");

  for (const double paper_n : paper_sizes) {
    const std::size_t n = bench::scaled(paper_n);
    const data::Dataset ds = data::quest_generate(
        n, {.function = 2, .seed = static_cast<std::uint64_t>(paper_n)});
    const core::ParOptions base = bench::fig8_options();
    const auto series =
        core::speedup_series(core::Formulation::Hybrid, ds, base, procs);
    std::printf("%.1fM examples (N=%-7zu)", paper_n / 1e6, n);
    for (const auto& pt : series) std::printf(" %7.2f", pt.speedup);
    std::printf("\n");
    char workload[32];
    std::snprintf(workload, sizeof workload, "%.1fM", paper_n / 1e6);
    bench::emit_speedup_series(rep, workload, "hybrid", series);
    bench::emit_mem_scaling(rep, workload, "hybrid", series);
  }

  // Instrumented P=8 run on the largest workload: per-phase x per-level
  // breakdown, load-imbalance factors, and a Perfetto trace.
  {
    const std::size_t n = bench::scaled(1.6e6);
    const data::Dataset ds = data::quest_generate(
        n, {.function = 2, .seed = static_cast<std::uint64_t>(1.6e6)});
    core::ParOptions opt = bench::fig8_options();
    opt.num_procs = 8;
    const bench::ModelInfo model{
        .train_seed = static_cast<std::uint64_t>(1.6e6), .paper_bins = false};
    const core::ParResult res = bench::run_instrumented(
        rep, "hybrid.P8", core::Formulation::Hybrid, ds, opt, 0.0, &model);
    std::printf("\ninstrumented hybrid P=8 (1.6M paper-scale): %.1f ms\n",
                res.parallel_time / 1000.0);
  }

  std::printf("\nclosed-form model at full paper scale:\n%-24s",
              "model speedup at P:");
  for (const int p : procs) std::printf(" %7d", p);
  std::printf("\n");
  for (const double paper_n : paper_sizes) {
    core::AnalysisInput in;
    in.N = paper_n;
    in.A_d = 9;
    in.C = 2;
    in.M = 16;
    in.L1 = 24;
    std::printf("%.1fM examples          ", paper_n / 1e6);
    for (const int p : procs) {
      in.P = p;
      std::printf(" %7.2f", core::predicted_serial_time(in) /
                                core::predicted_hybrid_time(in, 13.0));
    }
    std::printf("\n");
  }
  return 0;
}
