// Shared helpers for the figure-regeneration harnesses.
//
// Each fig*_ binary regenerates one figure of the paper's evaluation
// (Section 5) on the simulated SP-2. Dataset sizes default to 1/10 of the
// paper's (the simulator runs on one host core); set PDT_SCALE to change,
// e.g. PDT_SCALE=1.0 for the paper's full 0.8M/1.6M records.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"

namespace pdt::bench {

/// Global size multiplier from the PDT_SCALE env var (default 0.1).
inline double scale() {
  const char* env = std::getenv("PDT_SCALE");
  if (env == nullptr) return 0.1;
  const double s = std::atof(env);
  return s > 0.0 ? s : 0.1;
}

inline std::size_t scaled(double paper_n) {
  return static_cast<std::size_t>(paper_n * scale());
}

/// The paper's Figure 6/7 workload: Quest function 2 with the six
/// continuous attributes uniformly discretized (13/14/6/11/10/20 bins).
inline data::Dataset fig6_workload(std::size_t n, std::uint64_t seed = 1) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

/// The paper's Figure 8/9 workload: original continuous attributes with
/// SPEC-style per-node clustering discretization.
inline core::ParOptions fig8_options() {
  core::ParOptions opt;
  opt.grow.cont_split = dtree::ContSplit::KMeans;
  opt.grow.cont_bins = 32;
  opt.grow.per_node_bins = 8;
  opt.grow.min_records = 8;
  return opt;
}

inline void header(const char* fig, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("simulated machine: IBM SP-2 cost model (t_s=%.0fus, "
              "t_w=%.2fus/word, t_c=%.2fus)\n",
              mpsim::CostModel::sp2().t_s, mpsim::CostModel::sp2().t_w,
              mpsim::CostModel::sp2().t_c);
  std::printf("dataset scale: %.2fx the paper's (PDT_SCALE to change)\n",
              scale());
  std::printf("================================================================\n");
}

}  // namespace pdt::bench
