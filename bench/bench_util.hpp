// Shared helpers for the figure-regeneration harnesses.
//
// Each fig*_ binary regenerates one figure of the paper's evaluation
// (Section 5) on the simulated SP-2. Dataset sizes default to 1/10 of the
// paper's (the simulator runs on one host core); set PDT_SCALE to change,
// e.g. PDT_SCALE=1.0 for the paper's full 0.8M/1.6M records.
//
// Besides the human-readable text, every harness emits a machine-readable
// JSON report ("pdt-bench-v1") next to its text output — <harness>.json
// in the working directory — and the instrumented sections dump
// Perfetto-loadable traces (<harness>.<tag>.trace.json). Set PDT_JSON=0
// to disable all file output, PDT_JSON_DIR=<dir> to redirect it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "core/runner.hpp"
#include "data/discretize.hpp"
#include "data/quest.hpp"
#include "dtree/metrics.hpp"
#include "dtree/serialize.hpp"
#include "obs/atomic_file.hpp"
#include "obs/export.hpp"
#include "obs/fingerprint.hpp"
#include "obs/observability.hpp"

namespace pdt::bench {

/// Global size multiplier from the PDT_SCALE env var (default 0.1).
/// Rejects non-numeric or non-positive values with a warning instead of
/// silently training on a 0-record dataset.
inline double scale() {
  const char* env = std::getenv("PDT_SCALE");
  if (env == nullptr || *env == '\0') return 0.1;
  char* end = nullptr;
  const double s = std::strtod(env, &end);
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  if (end == env || *end != '\0' || !std::isfinite(s) || s <= 0.0) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "warning: PDT_SCALE=\"%s\" is not a positive number; "
                   "using the default 0.1\n",
                   env);
    }
    return 0.1;
  }
  return s;
}

inline std::size_t scaled(double paper_n) {
  return static_cast<std::size_t>(paper_n * scale());
}

/// The paper's Figure 6/7 workload: Quest function 2 with the six
/// continuous attributes uniformly discretized (13/14/6/11/10/20 bins).
inline data::Dataset fig6_workload(std::size_t n, std::uint64_t seed = 1) {
  return data::discretize_uniform(
      data::quest_generate(n, {.function = 2, .seed = seed}),
      data::quest_paper_bins());
}

/// The paper's Figure 8/9 workload: original continuous attributes with
/// SPEC-style per-node clustering discretization.
inline core::ParOptions fig8_options() {
  core::ParOptions opt;
  opt.grow.cont_split = dtree::ContSplit::KMeans;
  opt.grow.cont_bins = 32;
  opt.grow.per_node_bins = 8;
  opt.grow.min_records = 8;
  return opt;
}

inline void header(const char* fig, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("simulated machine: IBM SP-2 cost model (t_s=%.0fus, "
              "t_w=%.2fus/word, t_c=%.2fus)\n",
              mpsim::CostModel::sp2().t_s, mpsim::CostModel::sp2().t_w,
              mpsim::CostModel::sp2().t_c);
  std::printf("dataset scale: %.2fx the paper's (PDT_SCALE to change)\n",
              scale());
  std::printf("================================================================\n");
}

/// Directory for JSON artifacts, or nullopt when disabled (PDT_JSON=0).
/// A PDT_JSON_DIR that does not exist yet is created recursively (the CI
/// repeat loops point fresh harness runs at per-repeat directories); a
/// failed creation warns once and lets the per-file opens report the
/// rest.
inline std::optional<std::string> json_dir() {
  const char* toggle = std::getenv("PDT_JSON");
  if (toggle != nullptr &&
      (std::string(toggle) == "0" || std::string(toggle) == "off")) {
    return std::nullopt;
  }
  const char* dir = std::getenv("PDT_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return std::string(".");
  static bool attempted = false;
  if (!attempted) {
    attempted = true;
    std::error_code ec;
    if (!std::filesystem::exists(dir, ec)) {
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr,
                     "warning: cannot create PDT_JSON_DIR \"%s\": %s\n", dir,
                     ec.message().c_str());
      }
    }
  }
  return std::string(dir);
}

inline std::string json_path(const std::string& file) {
  return *json_dir() + "/" + file;
}

/// Host (wall-clock) profiling toggle: on by default — the profiler is
/// non-perturbing (the parity suite proves the virtual state identical) —
/// PDT_HOST=0 turns it off, PDT_HOST_COUNTERS=1 additionally asks for
/// perf_event_open cycle/instruction counters.
inline bool host_enabled() {
  const char* env = std::getenv("PDT_HOST");
  return env == nullptr ||
         (std::string(env) != "0" && std::string(env) != "off");
}

inline bool host_counters_requested() {
  const char* env = std::getenv("PDT_HOST_COUNTERS");
  return env != nullptr && std::string(env) == "1";
}

/// This process's environment fingerprint (git SHA, compiler, CPU,
/// PDT_* env) — collected once, stamped into every envelope and event
/// log so the pdt-trend registry can attribute any drift to a build or
/// machine change.
inline const obs::EnvFingerprint& fingerprint() {
  static const obs::EnvFingerprint fp = obs::EnvFingerprint::collect();
  return fp;
}

/// The harness's JSON report: an envelope object with run metadata and a
/// "sections" array that the harness appends section objects to through
/// writer(). All methods are safe no-ops when JSON output is disabled.
class BenchReport {
 public:
  explicit BenchReport(const char* harness) : harness_(harness) {
    if (!json_dir().has_value()) return;
    file_.emplace(json_path(std::string(harness) + ".json"));
    if (!file_->ok()) {
      std::fprintf(stderr, "warning: cannot write %s; JSON report disabled\n",
                   file_->path().c_str());
      file_.reset();
      return;
    }
    w_.emplace(file_->stream());
    w_->begin_object();
    w_->kv("schema", "pdt-bench-v1");
    w_->kv("harness", harness);
    w_->kv("scale", scale());
    w_->key("cost_model").begin_object();
    w_->kv("t_s", mpsim::CostModel::sp2().t_s);
    w_->kv("t_w", mpsim::CostModel::sp2().t_w);
    w_->kv("t_c", mpsim::CostModel::sp2().t_c);
    w_->kv("t_io", mpsim::CostModel::sp2().t_io);
    w_->end_object();
    w_->key("fingerprint");
    obs::write_fingerprint(*w_, fingerprint());
    w_->key("sections").begin_array();
  }

  ~BenchReport() {
    if (!w_.has_value()) return;
    w_->end_array();
    w_->end_object();
    file_->stream() << '\n';
    if (file_->commit()) {
      std::printf("\n[json] wrote %s\n", file_->path().c_str());
    } else {
      std::fprintf(stderr, "warning: failed to write %s\n",
                   file_->path().c_str());
    }
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Streaming writer positioned inside the "sections" array, or nullptr
  /// when JSON output is disabled.
  [[nodiscard]] obs::JsonWriter* writer() {
    return w_.has_value() ? &*w_ : nullptr;
  }
  [[nodiscard]] const char* harness() const { return harness_; }

 private:
  const char* harness_;
  std::optional<obs::AtomicFile> file_;
  std::optional<obs::JsonWriter> w_;
};

/// Workload provenance for the model artifacts: enough to regenerate the
/// training and held-out Quest datasets offline (`pdt-tree eval` relies
/// on exactly these fields ending up in the pdt-model-v1 meta).
struct ModelInfo {
  std::uint64_t train_seed = 1;
  int quest_function = 2;
  bool paper_bins = true;  ///< fig6 preprocessing; false = raw continuous
};

/// Held-out seeds live a fixed offset from the training seed, so the
/// eval sample is independent of training but fully determined by it.
inline constexpr std::uint64_t kEvalSeedOffset = 9000;

/// Held-out sample size for a training size: n/5 clamped to [1000, 20000]
/// (big enough for a stable accuracy, cheap enough for every run).
inline std::int64_t eval_rows_for(std::size_t train_n) {
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(train_n) / 5,
                                  1000, 20000);
}

/// The held-out dataset a ModelInfo describes (same generator pipeline
/// as training, eval seed).
inline data::Dataset model_eval_dataset(const ModelInfo& info,
                                        std::int64_t rows) {
  data::Dataset ds = data::quest_generate(
      static_cast<std::size_t>(rows),
      {.function = info.quest_function,
       .seed = info.train_seed + kEvalSeedOffset});
  if (info.paper_bins) {
    return data::discretize_uniform(ds, data::quest_paper_bins());
  }
  return ds;
}

/// Append a {"type":"model",...} section (content digest + tree shape +
/// held-out accuracy) and dump the full pdt-model-v1 artifact to
/// <harness>.<tag>.model.json (atomic). The digest covers only the
/// canonical tree bytes, never P or audit data, so serial and all three
/// formulations at any P must produce byte-identical digests — the CI
/// model-identity gate compares these files by hash.
inline void emit_model(BenchReport& rep, const char* tag,
                       const char* formulation, int procs,
                       const dtree::Tree& tree, std::size_t train_rows,
                       const ModelInfo& info,
                       const obs::SplitAudit* audit = nullptr) {
  obs::JsonWriter* w = rep.writer();
  if (w == nullptr) return;

  dtree::ModelMeta meta;
  meta.harness = rep.harness();
  meta.tag = tag;
  meta.formulation = formulation;
  meta.procs = procs;
  meta.quest_function = info.quest_function;
  meta.train_seed = info.train_seed;
  meta.train_rows = static_cast<std::int64_t>(train_rows);
  meta.paper_bins = info.paper_bins;
  meta.eval_seed = info.train_seed + kEvalSeedOffset;
  meta.eval_rows = eval_rows_for(train_rows);

  const data::Dataset eval_ds = model_eval_dataset(info, meta.eval_rows);
  const dtree::Evaluation ev = dtree::evaluate(tree, eval_ds);
  const std::string digest = dtree::model_digest(tree);

  w->begin_object();
  w->kv("type", "model");
  w->kv("tag", tag);
  w->kv("formulation", formulation);
  w->kv("procs", procs);
  w->kv("digest", digest);
  w->kv("nodes", static_cast<std::int64_t>(dtree::canonical_order(tree).size()));
  w->kv("leaves", static_cast<std::int64_t>(tree.num_leaves()));
  w->kv("depth", static_cast<std::int64_t>(tree.depth()));
  w->kv("eval_seed", meta.eval_seed);
  w->kv("eval_rows", meta.eval_rows);
  w->kv("accuracy", ev.accuracy());
  w->end_object();

  obs::AtomicFile model_file(json_path(
      std::string(rep.harness()) + "." + tag + ".model.json"));
  if (model_file.ok()) {
    model_file.stream() << dtree::model_json(
        tree, meta,
        audit != nullptr
            ? std::span<const dtree::SplitAuditEntry>(audit->entries())
            : std::span<const dtree::SplitAuditEntry>(),
        ev.accuracy());
    if (model_file.commit()) {
      std::printf("[json] wrote %s (inspect with pdt-tree)\n",
                  model_file.path().c_str());
    }
  }
}

/// Append a {"type":"speedup_series",...} section.
inline void emit_speedup_series(BenchReport& rep, const char* workload,
                                const char* formulation,
                                const std::vector<core::SpeedupPoint>& series) {
  obs::JsonWriter* w = rep.writer();
  if (w == nullptr) return;
  w->begin_object();
  w->kv("type", "speedup_series");
  w->kv("workload", workload);
  w->kv("formulation", formulation);
  w->key("points").begin_array();
  for (const core::SpeedupPoint& pt : series) {
    w->begin_object();
    w->kv("procs", pt.procs);
    w->kv("time_us", pt.time_us);
    w->kv("speedup", pt.speedup);
    w->kv("efficiency", pt.efficiency);
    w->kv("records_moved", pt.result.records_moved);
    w->kv("histogram_words", pt.result.histogram_words);
    w->end_object();
  }
  w->end_array();
  w->end_object();
}

/// Largest per-rank peak across a run's byte accounts.
inline std::int64_t max_rank_peak(const std::vector<mpsim::MemStats>& mem) {
  std::int64_t peak = 0;
  for (const mpsim::MemStats& m : mem) peak = std::max(peak, m.peak_total);
  return peak;
}

/// Append a {"type":"mem_scaling",...} section: one pdt-mem-v1 report per
/// processor count, taken from the byte accounts that ride along in each
/// SpeedupPoint's ParResult. This is the raw material for pdt-report's
/// memory-scalability verdict (per-rank peak vs P at fixed N).
inline void emit_mem_scaling(BenchReport& rep, const char* workload,
                             const char* formulation,
                             const std::vector<core::SpeedupPoint>& series) {
  obs::JsonWriter* w = rep.writer();
  if (w == nullptr) return;
  w->begin_object();
  w->kv("type", "mem_scaling");
  w->kv("workload", workload);
  w->kv("formulation", formulation);
  w->key("points").begin_array();
  for (const core::SpeedupPoint& pt : series) {
    w->begin_object();
    w->kv("procs", pt.procs);
    w->key("mem");
    obs::write_mem(*w, pt.result.mem, &pt.result.mem_predicted);
    w->end_object();
  }
  w->end_array();
  w->end_object();
}

/// Append a standalone {"type":"mem_run",...} section for a single build.
inline void emit_mem_run(BenchReport& rep, const char* tag, int procs,
                         const std::vector<mpsim::MemStats>& mem,
                         const mpsim::MemPredicted* predicted) {
  obs::JsonWriter* w = rep.writer();
  if (w == nullptr) return;
  w->begin_object();
  w->kv("type", "mem_run");
  w->kv("tag", tag);
  w->kv("procs", procs);
  w->key("mem");
  obs::write_mem(*w, mem, predicted);
  w->end_object();
}

/// Run one build with full observability attached and append an
/// {"type":"instrumented_run",...} section containing the pdt-metrics-v1
/// report (per-phase x per-level breakdown, load-imbalance factors,
/// registry metrics), the pdt-comm-v1 report (collective
/// measured-vs-predicted costs, traffic matrix, critical path), and the
/// pdt-mem-v1 report (per-rank byte accounts with the ledger's
/// phase x level attribution). Also dumps a Perfetto trace of the run to
/// <harness>.<tag>.trace.json and the complete execution log to
/// <harness>.<tag>.events.json (pdt-events-v1, the input of pdt-replay)
/// unless JSON output is disabled. `iso_c` is embedded in the event
/// log's meta so offline isoefficiency charts can draw the analytic
/// curve (pass core::isoefficiency_constant; 0 = not applicable).
///
/// Unless PDT_HOST=0, a HostProfiler rides the run and the section gains
/// a "host" member (pdt-host-v1: the wall-nanosecond account paired
/// cell-for-cell with the virtual breakdown), the events log gains a
/// "host" overlay, and <harness>.<tag>.host.json carries the standalone
/// report. <harness>.<tag>.threads.json carries the pdt-threads-v1
/// concurrency telemetry (shard census, merge provenance, lock
/// contention); the envelope gains a "threads" member only when the run
/// was actually concurrent. All side files go through AtomicFile (temp +
/// rename), so a killed harness never leaves a torn artifact for the CI
/// gates.
inline core::ParResult run_instrumented(BenchReport& rep, const char* tag,
                                        core::Formulation f,
                                        const data::Dataset& ds,
                                        core::ParOptions opt,
                                        double iso_c = 0.0,
                                        const ModelInfo* model = nullptr) {
  obs::Observability o(obs::ProfilerConfig{.timeline = true});
  o.enable_event_log();
  if (host_enabled()) {
    o.enable_host_profiler(
        obs::HostProfilerConfig{.counters = host_counters_requested()});
  }
  if (model != nullptr) o.enable_split_audit();
  opt.obs = &o;
  opt.trace = true;  // collective events feed the trace's flow arrows
  const core::ParResult res = core::build(f, ds, opt);

  obs::JsonWriter* w = rep.writer();
  if (w != nullptr) {
    w->begin_object();
    w->kv("type", "instrumented_run");
    w->kv("tag", tag);
    w->kv("formulation", core::to_string(f));
    w->kv("procs", opt.num_procs);
    w->kv("n", static_cast<std::int64_t>(ds.num_rows()));
    w->kv("max_clock_us", res.parallel_time);
    w->key("metrics");
    obs::write_metrics(*w, o);
    w->key("comm");
    obs::write_comm(*w, o.comm_ledger(), &o.critical_path(), &o.profiler());
    w->key("mem");
    obs::write_mem(*w, res.mem, &res.mem_predicted, &o.mem_ledger(),
                   &o.profiler());
    if (o.host_profiler() != nullptr) {
      w->key("host");
      obs::write_host(*w, *o.host_profiler());
    }
    // Concurrency telemetry joins the envelope only when the run was
    // actually concurrent (several shards, or samples dropped) — the
    // serial harnesses keep their pre-threads envelope bytes. The
    // standalone <harness>.<tag>.threads.json below is always written.
    {
      const obs::ThreadRegistry::Stats treg =
          obs::ThreadRegistry::instance().stats();
      const bool threaded =
          treg.peak_active > 1 || treg.overflow > 0 ||
          o.profiler().dropped() > 0 || o.mem_ledger().dropped() > 0 ||
          (o.event_log() != nullptr && o.event_log()->ring_dropped() > 0);
      if (threaded) {
        w->key("threads");
        obs::write_threads(*w, o);
      }
    }
    w->end_object();

    obs::AtomicFile trace_file(json_path(
        std::string(rep.harness()) + "." + tag + ".trace.json"));
    if (trace_file.ok()) {
      obs::write_perfetto_trace(trace_file.stream(), o.profiler(), res.trace);
      if (trace_file.commit()) {
        std::printf("[json] wrote %s (load at https://ui.perfetto.dev)\n",
                    trace_file.path().c_str());
      }
    }

    if (o.event_log() != nullptr) {
      obs::AtomicFile events_file(json_path(
          std::string(rep.harness()) + "." + tag + ".events.json"));
      if (events_file.ok()) {
        obs::EventLogMeta meta;
        meta.formulation = core::to_string(f);
        meta.workload = tag;
        meta.n = static_cast<std::int64_t>(ds.num_rows());
        meta.procs = opt.num_procs;
        meta.iso_c = iso_c;
        meta.fingerprint = &fingerprint();
        obs::write_events_report(events_file.stream(), *o.event_log(), meta,
                                 o.host_profiler());
        if (events_file.commit()) {
          std::printf("[json] wrote %s (replay with pdt-replay)\n",
                      events_file.path().c_str());
        }
      }
    }

    if (o.host_profiler() != nullptr) {
      obs::AtomicFile host_file(json_path(
          std::string(rep.harness()) + "." + tag + ".host.json"));
      if (host_file.ok()) {
        obs::write_host_report(host_file.stream(), *o.host_profiler());
        if (host_file.commit()) {
          std::printf("[json] wrote %s (host wall-clock account)\n",
                      host_file.path().c_str());
        }
      }
    }

    {
      obs::AtomicFile threads_file(json_path(
          std::string(rep.harness()) + "." + tag + ".threads.json"));
      if (threads_file.ok()) {
        obs::write_threads_report(threads_file.stream(), o);
        if (threads_file.commit()) {
          std::printf("[json] wrote %s (concurrency telemetry)\n",
                      threads_file.path().c_str());
        }
      }
    }

    if (model != nullptr) {
      emit_model(rep, tag, core::to_string(f), opt.num_procs, res.tree,
                 ds.num_rows(), *model, o.split_audit());
    }
  }
  return res;
}

}  // namespace pdt::bench
