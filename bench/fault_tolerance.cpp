// Fault-tolerance overhead of the three formulations (DESIGN.md §7, §13).
//
// Each formulation builds the Figure-6 workload at P=8 under six
// scenarios: fault-free baseline, checkpointing with no faults (the pure
// checkpoint tax), a fail-stop death recovered mid-build, a transient
// 4x straggler, a transient collective timeout that heals after two
// retries, and checksum-detected link corruption retried once. Every
// faulty run's tree is checked bit-identical to the baseline's —
// recovery must never change the classifier.
//
// On top of the in-simulation scenarios, a durable-checkpoint section
// exercises the pdt-ckpt-v1 on-disk path: one run writes an epoch file
// per level to a scratch directory (the durable tax), then a second run
// resumes from a mid-tree epoch exactly as a crash-restarted process
// would (the resume bound makes later epochs invisible, which is the
// on-disk state a kill at that epoch leaves behind) and must finish with
// a digest-identical tree.
//
// Emits fault_tolerance.json with a {"type":"fault_tolerance",
// "schema":"pdt-ft-v1"} section per formulation (one row per scenario).
// Rows carry the retry/backoff counters (retries, retry_us,
// escalations) and the durable/resume counters (durable_checkpoints,
// durable_bytes, durable_io_us, resumed, resume_epoch, resume_skipped,
// resume_io_us, resume_records); readers of older artifacts default all
// of these to zero.
#include <filesystem>

#include "bench_util.hpp"
#include "mpsim/fault.hpp"

using namespace pdt;

namespace {

struct Scenario {
  const char* tag;
  bool armed = false;
  mpsim::FaultPlan plan;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> s;
  s.push_back({"baseline", false, {}});
  s.push_back({"ckpt-only", true, {}});
  Scenario fail{"failstop-r2@L1", true, {}};
  fail.plan.fail_stop(2, 1);
  s.push_back(std::move(fail));
  Scenario slow{"straggler-r1x4", true, {}};
  slow.plan.straggler(1, 0, 3, 4.0);
  s.push_back(std::move(slow));
  Scenario flaky{"transient-r2x2", true, {}};
  flaky.plan.transient_timeout(2, 1, 2);
  s.push_back(std::move(flaky));
  Scenario corrupt{"corrupt-l0-1@L1", true, {}};
  corrupt.plan.corrupt_link(0, 1, 1, 1);
  s.push_back(std::move(corrupt));
  return s;
}

/// Write one pdt-ft-v1 row. All counters come from RecoveryStats; rows
/// always carry the full field set so downstream tools never guess.
void write_row(obs::JsonWriter& w, const char* scenario,
               const std::string& plan, const core::ParResult& res,
               double overhead_pct, bool identical) {
  const core::RecoveryStats& rc = res.recovery;
  w.begin_object();
  w.kv("scenario", scenario);
  w.kv("plan", plan);
  w.kv("time_us", res.parallel_time);
  w.kv("overhead_pct", overhead_pct);
  w.kv("checkpoints", rc.checkpoints);
  w.kv("failures", rc.failures);
  w.kv("checkpoint_bytes", rc.checkpoint_bytes);
  w.kv("checkpoint_io_us", rc.checkpoint_io_us);
  w.kv("detect_us", rc.detect_us);
  w.kv("recovery_us", rc.recovery_us);
  w.kv("records_redistributed", rc.records_redistributed);
  w.kv("retries", static_cast<std::int64_t>(rc.retries));
  w.kv("retry_us", rc.retry_us);
  w.kv("escalations", rc.escalations);
  w.kv("durable_checkpoints", rc.durable_checkpoints);
  w.kv("durable_bytes", rc.durable_bytes);
  w.kv("durable_io_us", rc.durable_io_us);
  w.kv("resumed", rc.resumed);
  w.kv("resume_epoch", rc.resume_epoch);
  w.kv("resume_skipped", rc.resume_skipped);
  w.kv("resume_io_us", rc.resume_io_us);
  w.kv("resume_records", rc.resume_records);
  w.kv("tree_identical", identical);
  w.end_object();
}

void print_row(const char* tag, const core::ParResult& res,
               double overhead_pct, bool identical) {
  const core::RecoveryStats& rc = res.recovery;
  std::printf("%-16s %12.1f %9.2f %5d %5d %10.0f %10.1f %10.1f %8lld %7llu "
              "%5s\n",
              tag, res.parallel_time / 1000.0, overhead_pct, rc.checkpoints,
              rc.failures, static_cast<double>(rc.checkpoint_bytes) / 1024.0,
              rc.detect_us / 1000.0, rc.recovery_us / 1000.0,
              static_cast<long long>(rc.records_redistributed),
              static_cast<unsigned long long>(rc.retries),
              identical ? "yes" : "NO");
}

void run_formulation(bench::BenchReport& rep, core::Formulation f,
                     const data::Dataset& ds, int procs) {
  std::printf("\n--- %s, P=%d ---\n", core::to_string(f), procs);
  std::printf("%-16s %12s %9s %5s %5s %10s %10s %10s %8s %7s %5s\n",
              "scenario", "time_ms", "ovhd%", "ckpts", "fails", "ckpt_KiB",
              "detect_ms", "recov_ms", "redist", "retries", "tree=");

  obs::JsonWriter* w = rep.writer();
  if (w != nullptr) {
    w->begin_object();
    w->kv("type", "fault_tolerance");
    w->kv("schema", "pdt-ft-v1");
    w->kv("formulation", core::to_string(f));
    w->kv("procs", procs);
    w->kv("n", static_cast<std::int64_t>(ds.num_rows()));
    w->key("rows").begin_array();
  }

  core::ParResult baseline;
  for (const Scenario& s : scenarios()) {
    core::ParOptions opt;
    opt.num_procs = procs;
    if (s.armed) opt.fault = &s.plan;
    const core::ParResult res = core::build(f, ds, opt);
    const bool first = !s.armed && baseline.tree.num_nodes() == 0;
    if (first) baseline = res;
    const double overhead_pct =
        baseline.parallel_time > 0.0
            ? 100.0 * (res.parallel_time / baseline.parallel_time - 1.0)
            : 0.0;
    const bool identical = res.tree.same_as(baseline.tree);
    print_row(s.tag, res, overhead_pct, identical);
    if (w != nullptr) {
      write_row(*w, s.tag, s.armed ? s.plan.describe() : "none", res,
                overhead_pct, identical);
    }
  }

  // Durable checkpoints + crash-restart resume (pdt-ckpt-v1). The first
  // run persists an epoch per level to a scratch directory; the second
  // resumes from a mid-tree epoch. Bounding the resume epoch hides all
  // later epoch files, so the loader sees exactly what a process killed
  // right after committing that epoch would have left on disk.
  const std::filesystem::path ckdir =
      std::filesystem::path("ft_ckpt_scratch") / core::to_string(f);
  std::error_code ec;
  std::filesystem::remove_all(ckdir, ec);
  std::filesystem::create_directories(ckdir, ec);
  {
    core::ParOptions opt;
    opt.num_procs = procs;
    opt.ckpt_dir = ckdir.string();
    opt.ckpt_keep = 1000;  // keep every epoch so any cut is resumable
    const core::ParResult durable = core::build(f, ds, opt);
    const double durable_ovhd =
        baseline.parallel_time > 0.0
            ? 100.0 * (durable.parallel_time / baseline.parallel_time - 1.0)
            : 0.0;
    const bool durable_same = durable.tree.same_as(baseline.tree);
    print_row("durable-ckpt", durable, durable_ovhd, durable_same);
    if (w != nullptr) {
      write_row(*w, "durable-ckpt", "ckpt_dir=" + ckdir.string(), durable,
                durable_ovhd, durable_same);
    }

    const int mid = durable.recovery.durable_checkpoints / 2;
    core::ParOptions ropt;
    ropt.num_procs = procs;
    ropt.ckpt_dir = ckdir.string();
    ropt.ckpt_keep = 1000;
    ropt.resume = true;
    ropt.resume_epoch = mid;
    const core::ParResult resumed = core::build(f, ds, ropt);
    // Only the levels past the resumed epoch are rebuilt, so this
    // overhead is negative by construction; the interesting numbers are
    // resume_io_us / resume_records and the digest check.
    const double resume_ovhd =
        baseline.parallel_time > 0.0
            ? 100.0 * (resumed.parallel_time / baseline.parallel_time - 1.0)
            : 0.0;
    const bool resume_same = resumed.tree.same_as(baseline.tree);
    char rtag[32];
    std::snprintf(rtag, sizeof rtag, "resume@e%d", mid);
    print_row(rtag, resumed, resume_ovhd, resume_same);
    std::printf("%-16s %s epoch %d: %lld records, %.1f ms io, "
                "%d epoch(s) skipped\n",
                "", "resumed from", resumed.recovery.resume_epoch,
                static_cast<long long>(resumed.recovery.resume_records),
                resumed.recovery.resume_io_us / 1000.0,
                resumed.recovery.resume_skipped);
    if (w != nullptr) {
      write_row(*w, rtag, "resume from " + ckdir.string(), resumed,
                resume_ovhd, resume_same);
    }
  }
  std::filesystem::remove_all(ckdir, ec);

  if (w != nullptr) {
    w->end_array();
    w->end_object();
  }

  // Model identity under the fault machinery: the fault-free baseline
  // tree must carry the same digest as every other harness growing this
  // workload (and every faulty scenario above was just proven identical
  // to it).
  char tag[32];
  std::snprintf(tag, sizeof tag, "%s.P%d", core::to_string(f), procs);
  bench::emit_model(rep, tag, core::to_string(f), procs, baseline.tree,
                    ds.num_rows(),
                    bench::ModelInfo{.train_seed = 1, .paper_bins = true});
}

}  // namespace

int main() {
  bench::header("Fault tolerance",
                "checkpoint/recovery overhead of the three formulations");
  bench::BenchReport rep("fault_tolerance");
  const data::Dataset ds = bench::fig6_workload(bench::scaled(0.2e6), 1);
  for (const core::Formulation f :
       {core::Formulation::Sync, core::Formulation::Partitioned,
        core::Formulation::Hybrid}) {
    run_formulation(rep, f, ds, 8);
  }
  std::printf("\n(tree= column: faulty run's tree is bit-identical to the "
              "fault-free baseline; resume rows rebuild only the levels "
              "past the resumed epoch)\n");
  return 0;
}
