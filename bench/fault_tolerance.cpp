// Fault-tolerance overhead of the three formulations (DESIGN.md §7).
//
// Each formulation builds the Figure-6 workload at P=8 under four
// scenarios: fault-free baseline, checkpointing with no faults (the pure
// checkpoint tax), a fail-stop death recovered mid-build, and a transient
// 4x straggler. Every faulty run's tree is checked bit-identical to the
// baseline's — recovery must never change the classifier.
//
// Emits fault_tolerance.json with a {"type":"fault_tolerance",
// "schema":"pdt-ft-v1"} section per formulation (one row per scenario).
#include "bench_util.hpp"
#include "mpsim/fault.hpp"

using namespace pdt;

namespace {

struct Scenario {
  const char* tag;
  bool armed = false;
  mpsim::FaultPlan plan;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> s;
  s.push_back({"baseline", false, {}});
  s.push_back({"ckpt-only", true, {}});
  Scenario fail{"failstop-r2@L1", true, {}};
  fail.plan.fail_stop(2, 1);
  s.push_back(std::move(fail));
  Scenario slow{"straggler-r1x4", true, {}};
  slow.plan.straggler(1, 0, 3, 4.0);
  s.push_back(std::move(slow));
  return s;
}

void run_formulation(bench::BenchReport& rep, core::Formulation f,
                     const data::Dataset& ds, int procs) {
  std::printf("\n--- %s, P=%d ---\n", core::to_string(f), procs);
  std::printf("%-16s %12s %9s %5s %5s %10s %10s %10s %8s %5s\n", "scenario",
              "time_ms", "ovhd%", "ckpts", "fails", "ckpt_KiB", "detect_ms",
              "recov_ms", "redist", "tree=");

  obs::JsonWriter* w = rep.writer();
  if (w != nullptr) {
    w->begin_object();
    w->kv("type", "fault_tolerance");
    w->kv("schema", "pdt-ft-v1");
    w->kv("formulation", core::to_string(f));
    w->kv("procs", procs);
    w->kv("n", static_cast<std::int64_t>(ds.num_rows()));
    w->key("rows").begin_array();
  }

  core::ParResult baseline;
  for (const Scenario& s : scenarios()) {
    core::ParOptions opt;
    opt.num_procs = procs;
    if (s.armed) opt.fault = &s.plan;
    const core::ParResult res = core::build(f, ds, opt);
    const bool first = !s.armed && baseline.tree.num_nodes() == 0;
    if (first) baseline = res;
    const double overhead_pct =
        baseline.parallel_time > 0.0
            ? 100.0 * (res.parallel_time / baseline.parallel_time - 1.0)
            : 0.0;
    const bool identical = res.tree.same_as(baseline.tree);
    const core::RecoveryStats& rc = res.recovery;
    std::printf("%-16s %12.1f %9.2f %5d %5d %10.0f %10.1f %10.1f %8lld %5s\n",
                s.tag, res.parallel_time / 1000.0, overhead_pct,
                rc.checkpoints, rc.failures,
                static_cast<double>(rc.checkpoint_bytes) / 1024.0,
                rc.detect_us / 1000.0, rc.recovery_us / 1000.0,
                static_cast<long long>(rc.records_redistributed),
                identical ? "yes" : "NO");
    if (w != nullptr) {
      w->begin_object();
      w->kv("scenario", s.tag);
      w->kv("plan", s.armed ? s.plan.describe() : "none");
      w->kv("time_us", res.parallel_time);
      w->kv("overhead_pct", overhead_pct);
      w->kv("checkpoints", rc.checkpoints);
      w->kv("failures", rc.failures);
      w->kv("checkpoint_bytes", rc.checkpoint_bytes);
      w->kv("checkpoint_io_us", rc.checkpoint_io_us);
      w->kv("detect_us", rc.detect_us);
      w->kv("recovery_us", rc.recovery_us);
      w->kv("records_redistributed", rc.records_redistributed);
      w->kv("tree_identical", identical);
      w->end_object();
    }
  }
  if (w != nullptr) {
    w->end_array();
    w->end_object();
  }

  // Model identity under the fault machinery: the fault-free baseline
  // tree must carry the same digest as every other harness growing this
  // workload (and every faulty scenario above was just proven identical
  // to it).
  char tag[32];
  std::snprintf(tag, sizeof tag, "%s.P%d", core::to_string(f), procs);
  bench::emit_model(rep, tag, core::to_string(f), procs, baseline.tree,
                    ds.num_rows(),
                    bench::ModelInfo{.train_seed = 1, .paper_bins = true});
}

}  // namespace

int main() {
  bench::header("Fault tolerance",
                "checkpoint/recovery overhead of the three formulations");
  bench::BenchReport rep("fault_tolerance");
  const data::Dataset ds = bench::fig6_workload(bench::scaled(0.2e6), 1);
  for (const core::Formulation f :
       {core::Formulation::Sync, core::Formulation::Partitioned,
        core::Formulation::Hybrid}) {
    run_formulation(rep, f, ds, 8);
  }
  std::printf("\n(tree= column: faulty run's tree is bit-identical to the "
              "fault-free baseline)\n");
  return 0;
}
