// Ablation: the communication-buffer capacity. The paper synchronizes
// "after every 100 nodes"; this sweep shows why — tiny buffers pay the
// start-up latency per node, huge buffers change little once the frontier
// fits (volume, not latency, then dominates).
#include "bench_util.hpp"

using namespace pdt;

int main() {
  bench::header("Ablation", "communication-buffer capacity (sync & hybrid)");
  const std::size_t n = bench::scaled(0.8e6);
  const data::Dataset ds = bench::fig6_workload(n, 5);
  std::printf("\nworkload: N = %zu, P = 8\n\n", n);

  std::printf("%12s %16s %16s %14s\n", "buffer", "sync(ms)", "hybrid(ms)",
              "sync msgs");
  for (const int buffer : {1, 10, 100, 1000, 100000}) {
    core::ParOptions opt;
    opt.num_procs = 8;
    opt.comm_buffer_nodes = buffer;
    const core::ParResult sync = core::build_sync(ds, opt);
    const core::ParResult hybrid = core::build_hybrid(ds, opt);
    std::printf("%12d %16.1f %16.1f %14llu\n", buffer,
                sync.parallel_time / 1000.0, hybrid.parallel_time / 1000.0,
                static_cast<unsigned long long>(sync.totals.messages_sent));
  }
  std::printf("\n(the paper's experiments used a 100-node buffer)\n");
  return 0;
}
