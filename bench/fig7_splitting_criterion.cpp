// Figure 7: verification of the hybrid's splitting criterion. The hybrid
// splits a processor partition when
//     ratio = Sum(Communication Cost) / (Moving Cost + Load Balancing)
// reaches a trigger value. The paper proposes 1.0 as optimal and sweeps
// the trigger; runtime should be minimized near 1.0 and grow as the
// trigger moves away in either direction.
//
// Left graph:  0.8M examples on 8 processors.
// Right graph: 1.6M examples on 16 processors.
#include "bench_util.hpp"

using namespace pdt;

namespace {

void run_config(bench::BenchReport& rep, double paper_n, int procs,
                std::uint64_t seed) {
  const std::size_t n = bench::scaled(paper_n);
  std::printf("\n--- %.1fM paper-scale examples on %d processors "
              "(simulated N = %zu) ---\n", paper_n / 1e6, procs, n);
  const data::Dataset ds = bench::fig6_workload(n, seed);

  const double ratios[] = {0.01, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  double best_time = 0.0;
  double best_ratio = 0.0;
  std::printf("%8s %14s %12s %8s %8s\n", "ratio", "runtime(ms)",
              "rel-to-1.0", "splits", "moved");
  double at_one = 0.0;
  std::vector<core::ParResult> results;
  for (const double r : ratios) {
    core::ParOptions opt;
    opt.num_procs = procs;
    opt.split_ratio = r;
    results.push_back(core::build_hybrid(ds, opt));
    if (r == 1.0) at_one = results.back().parallel_time;
    if (best_time == 0.0 || results.back().parallel_time < best_time) {
      best_time = results.back().parallel_time;
      best_ratio = r;
    }
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::ParResult& res = results[i];
    std::printf("%8.2f %14.1f %11.2fx %8d %8lld\n", ratios[i],
                res.parallel_time / 1000.0, res.parallel_time / at_one,
                res.partition_splits,
                static_cast<long long>(res.records_moved));
  }
  std::printf("minimum at ratio %.2f — the paper proposes 1.0 as optimal "
              "(within 2x of optimal communication is guaranteed)\n",
              best_ratio);

  // Memory profile of the proposed-trigger run (ratio 1.0, index 4).
  const core::ParResult& at_one_res = results[4];
  std::printf("memory at ratio 1.00: max per-rank peak %.0f KiB "
              "(predicted %.0f KiB)\n",
              static_cast<double>(bench::max_rank_peak(at_one_res.mem)) /
                  1024.0,
              static_cast<double>(at_one_res.mem_predicted.total()) / 1024.0);
  char tag[32];
  std::snprintf(tag, sizeof tag, "ratio1.P%d", procs);
  bench::emit_mem_run(rep, tag, procs, at_one_res.mem,
                      &at_one_res.mem_predicted);

  if (obs::JsonWriter* w = rep.writer()) {
    w->begin_object();
    w->kv("type", "ratio_sweep");
    w->kv("paper_n", paper_n);
    w->kv("procs", procs);
    w->kv("best_ratio", best_ratio);
    w->key("points").begin_array();
    for (std::size_t i = 0; i < results.size(); ++i) {
      w->begin_object();
      w->kv("ratio", ratios[i]);
      w->kv("time_us", results[i].parallel_time);
      w->kv("rel_to_one", results[i].parallel_time / at_one);
      w->kv("splits", results[i].partition_splits);
      w->kv("records_moved", results[i].records_moved);
      w->end_object();
    }
    w->end_array();
    w->end_object();
  }

  // Model section for the proposed-trigger run: every split ratio grows
  // the same tree (only communication differs), so ratio 1.0 stands in
  // for all of them.
  bench::emit_model(rep, tag, "hybrid", procs, at_one_res.tree, ds.num_rows(),
                    bench::ModelInfo{.train_seed = seed, .paper_bins = true});
}

}  // namespace

int main() {
  bench::header("Figure 7", "splitting-criterion verification for the hybrid");
  bench::BenchReport rep("fig7_splitting_criterion");
  run_config(rep, 0.8e6, 8, 3);
  run_config(rep, 1.6e6, 16, 4);
  return 0;
}
