// Ablation: the four continuous-attribute strategies of Section 3.4, all
// inside the hybrid formulation on the same raw data:
//
//   1. parallel sorting at every node (exact thresholds, highest volume);
//   2. global uniform discretization as preprocessing (the Figure 6/7 mode);
//   3. per-node quantile discretization (CLOUDS [3]);
//   4. per-node clustering discretization (SPEC [23], the Figure 8/9 mode).
//
// Reported: simulated runtime, communicated volume, tree size, and
// held-out accuracy — the accuracy/communication trade-off the paper
// discusses.
#include "bench_util.hpp"

#include "data/io.hpp"
#include "dtree/metrics.hpp"

using namespace pdt;

int main() {
  bench::header("Ablation", "continuous-attribute handling (Section 3.4)");
  const std::size_t n = bench::scaled(0.4e6);
  const data::Dataset train =
      data::quest_generate(n, {.function = 2, .seed = 41});
  const data::Dataset test =
      data::quest_generate(n / 4, {.function = 2, .seed = 42});
  std::printf("\nworkload: N = %zu raw records, P = 8\n\n", n);

  struct Strategy {
    const char* name;
    core::ParOptions opt;
    bool discretize_first = false;
  };
  std::vector<Strategy> strategies;
  {
    core::ParOptions exact;
    exact.exact_continuous = true;
    exact.grow.max_depth = 16;
    strategies.push_back({"parallel sort (exact)", exact, false});

    core::ParOptions binned;
    binned.grow.max_depth = 16;
    strategies.push_back({"global uniform bins", binned, true});

    core::ParOptions quant;
    quant.grow.cont_split = dtree::ContSplit::Quantile;
    quant.grow.per_node_bins = 8;
    quant.grow.max_depth = 16;
    strategies.push_back({"per-node quantile (CLOUDS)", quant, false});

    core::ParOptions kmeans;
    kmeans.grow.cont_split = dtree::ContSplit::KMeans;
    kmeans.grow.per_node_bins = 8;
    kmeans.grow.max_depth = 16;
    strategies.push_back({"per-node k-means (SPEC)", kmeans, false});
  }

  const data::Dataset binned_train =
      data::discretize_uniform(train, data::quest_paper_bins());
  const data::Dataset binned_test =
      data::discretize_uniform(test, data::quest_paper_bins());

  std::printf("%-28s %10s %8s %12s %8s %9s\n", "strategy", "time(ms)",
              "speedup", "comm(Mwords)", "nodes", "test-acc");
  for (Strategy& s : strategies) {
    s.opt.num_procs = 8;
    s.opt.grow.min_records = 8;
    const data::Dataset& ds = s.discretize_first ? binned_train : train;
    const data::Dataset& eval_ds = s.discretize_first ? binned_test : test;
    const core::ParResult serial = core::build_serial(ds, s.opt);
    const core::ParResult res = core::build_hybrid(ds, s.opt);
    std::printf("%-28s %10.1f %8.2f %12.2f %8d %8.2f%%\n", s.name,
                res.parallel_time / 1000.0,
                serial.parallel_time / res.parallel_time,
                res.histogram_words / 1e6, res.tree.num_nodes(),
                dtree::evaluate(res.tree, eval_ds).accuracy() * 100.0);
  }
  std::printf("\n(exact thresholds buy accuracy and small trees at a much "
              "higher exchange volume; the per-node discretizers sit in "
              "between, as Section 3.4 argues)\n");
  return 0;
}
